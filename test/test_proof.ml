(* Proof logging + the independent DRUP checker. *)

module Solver = Sat.Solver
module Cnf = Sat.Cnf
module Proof = Sat.Proof
module Drup = Sat.Drup

(* pigeonhole principle CNF: [pigeons] into [holes], unsat when
   pigeons > holes; small but requires real clause learning *)
let php_cnf pigeons holes =
  let var p h = (p * holes) + h in
  let clauses = ref [] in
  for p = 0 to pigeons - 1 do
    clauses := List.init holes (fun h -> Solver.pos (var p h)) :: !clauses
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        clauses :=
          [ Solver.neg_of (var p1 h); Solver.neg_of (var p2 h) ] :: !clauses
      done
    done
  done;
  { Cnf.num_vars = pigeons * holes; clauses = !clauses }

let solve_logged ?assumptions cnf =
  let s = Solver.create () in
  let p = Proof.create () in
  Solver.set_proof s p;
  Cnf.load s cnf;
  (Solver.solve ?assumptions s, s, p)

let ok_or_fail what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let test_unsat_proof_checks () =
  let r, _, p = solve_logged (php_cnf 4 3) in
  Helpers.check_bool "php(4,3) unsat" true (r = Solver.Unsat);
  Helpers.check_bool "learnt something" true (Proof.num_adds p > 0);
  ok_or_fail "drup" (Drup.check (Proof.events p))

let test_assumption_unsat_needs_goal () =
  (* (a | b) under assumptions ~a ~b: unsat relative to the cube, but
     the formula itself is satisfiable — the empty-clause goal must
     fail and the cube goal must pass *)
  let cnf = { Cnf.num_vars = 2; clauses = [ [ Solver.pos 0; Solver.pos 1 ] ] } in
  let assumptions = [ Solver.neg_of 0; Solver.neg_of 1 ] in
  let r, _, p = solve_logged ~assumptions cnf in
  Helpers.check_bool "unsat under assumptions" true (r = Solver.Unsat);
  ok_or_fail "cube goal" (Drup.check ~goals:[ assumptions ] (Proof.events p));
  Helpers.check_bool "empty-clause goal rejected" true
    (Result.is_error (Drup.check (Proof.events p)))

let test_sat_proof_refutes_nothing () =
  let cnf =
    { Cnf.num_vars = 2; clauses = [ [ Solver.pos 0 ]; [ Solver.neg_of 1 ] ] }
  in
  let r, s, p = solve_logged cnf in
  Helpers.check_bool "sat" true (r = Solver.Sat);
  Helpers.check_bool "no unsat certificate from a sat run" true
    (Result.is_error (Drup.check (Proof.events p)));
  ok_or_fail "model" (Solver.check_model s)

let test_deletions_preserve_checkability () =
  (* force reduce_db so the log contains deletions; the derivation
     must still check because locked (reason) clauses are never
     deleted *)
  let s = Solver.create () in
  let p = Proof.create () in
  Solver.set_proof s p;
  Cnf.load s (php_cnf 7 6);
  Solver.set_max_learnts s 5;
  Helpers.check_bool "php(7,6) unsat" true (Solver.solve s = Solver.Unsat);
  Helpers.check_bool "reduce_db ran" true (Solver.num_reduce_dbs s > 0);
  Helpers.check_bool "deletions logged" true (Proof.num_deletes p > 0);
  ok_or_fail "drup with deletions" (Drup.check (Proof.events p))

let test_incremental_goals_against_final_db () =
  (* several Unsat-under-assumption answers from one incremental
     solver, all certified by goal cubes against the final log *)
  let s = Solver.create () in
  let p = Proof.create () in
  Solver.set_proof s p;
  let cnf = php_cnf 4 3 in
  let sel = Solver.new_var s in
  for _ = 1 to cnf.Cnf.num_vars do
    ignore (Solver.new_var s)
  done;
  (* guard every clause with ~sel so assumption sel activates php *)
  List.iter
    (fun c ->
      Solver.add_clause s
        (Solver.neg_of sel :: List.map (fun l -> l + 2) c)
        (* shift vars past sel *))
    cnf.Cnf.clauses;
  let goals = ref [] in
  for _ = 1 to 3 do
    Helpers.check_bool "unsat with selector" true
      (Solver.solve ~assumptions:[ Solver.pos sel ] s = Solver.Unsat);
    goals := [ Solver.pos sel ] :: !goals
  done;
  (* still satisfiable without the selector *)
  Helpers.check_bool "sat without selector" true (Solver.solve s = Solver.Sat);
  ok_or_fail "all goals" (Drup.check ~goals:!goals (Proof.events p))

let test_file_roundtrip () =
  (* the DIMACS + DRUP pair must certify from disk, the way an external
     consumer would check a --proof dump *)
  let cnf = php_cnf 4 3 in
  let r, _, p = solve_logged cnf in
  Helpers.check_bool "unsat" true (r = Solver.Unsat);
  let cnf_path = Filename.temp_file "diambound_proof" ".cnf" in
  let drup_path = Filename.temp_file "diambound_proof" ".drup" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove cnf_path;
      Sys.remove drup_path)
    (fun () ->
      let oc = open_out cnf_path in
      Sat.Dimacs.print oc cnf;
      close_out oc;
      let oc = open_out drup_path in
      output_string oc (Proof.to_string p);
      close_out oc;
      let cnf' = Sat.Dimacs.parse_file cnf_path in
      let p' = Proof.parse_file drup_path in
      Helpers.check_int "adds survive the round trip" (Proof.num_adds p)
        (Proof.num_adds p');
      Helpers.check_int "deletes survive the round trip" (Proof.num_deletes p)
        (Proof.num_deletes p');
      ok_or_fail "drup from disk" (Drup.check_cnf cnf' (Proof.events p')))

let test_parse_text () =
  let p = Proof.parse "c comment\n1 -2 0\nd 1 -2 0\n\n-3 0\n" in
  Helpers.check_int "adds" 2 (Proof.num_adds p);
  Helpers.check_int "deletes" 1 (Proof.num_deletes p);
  (match Proof.events p with
  | [ Proof.Add a; Proof.Delete d; Proof.Add u ] ->
    Helpers.check_bool "add lits" true (a = [| Solver.pos 0; Solver.neg_of 1 |]);
    Helpers.check_bool "delete matches add" true (d = a);
    Helpers.check_bool "unit" true (u = [| Solver.neg_of 2 |])
  | _ -> Alcotest.fail "unexpected event shape");
  (* malformed inputs *)
  List.iter
    (fun text ->
      match Proof.parse text with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "parse accepted %S" text)
    [ "1 2"; "1 0 2 0"; "1 x 0" ]

let test_check_model_catches_bad_model () =
  (* hand-build a corrupt "model" path: check_model against live
     clauses must notice a falsified clause *)
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a; Solver.pos (Solver.new_var s) ];
  Helpers.check_bool "sat" true (Solver.solve s = Solver.Sat);
  ok_or_fail "genuine model" (Solver.check_model s);
  let falsified =
    if Solver.value s (Solver.pos a) then Solver.neg_of a else Solver.pos a
  in
  Helpers.check_bool "assumption mismatch caught" true
    (Result.is_error (Solver.check_model ~assumptions:[ falsified ] s))

let suite =
  [
    Alcotest.test_case "unsat proof checks" `Quick test_unsat_proof_checks;
    Alcotest.test_case "assumption unsat needs its goal" `Quick
      test_assumption_unsat_needs_goal;
    Alcotest.test_case "sat proof refutes nothing" `Quick
      test_sat_proof_refutes_nothing;
    Alcotest.test_case "deletions preserve checkability" `Quick
      test_deletions_preserve_checkability;
    Alcotest.test_case "incremental goals vs final db" `Quick
      test_incremental_goals_against_final_db;
    Alcotest.test_case "dimacs+drup file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "drup text parsing" `Quick test_parse_text;
    Alcotest.test_case "check_model" `Quick test_check_model_catches_bad_model;
  ]
