module Net = Netlist.Net
module Lit = Netlist.Lit

let test_constant_folding () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  Helpers.check_bool "x & 0 = 0" true
    (Lit.equal (Net.add_and net a Lit.false_) Lit.false_);
  Helpers.check_bool "x & 1 = x" true (Lit.equal (Net.add_and net a Lit.true_) a);
  Helpers.check_bool "x & x = x" true (Lit.equal (Net.add_and net a a) a);
  Helpers.check_bool "x & ~x = 0" true
    (Lit.equal (Net.add_and net a (Lit.neg a)) Lit.false_);
  Helpers.check_bool "x | 1 = 1" true (Lit.equal (Net.add_or net a Lit.true_) Lit.true_);
  Helpers.check_bool "x | 0 = x" true (Lit.equal (Net.add_or net a Lit.false_) a);
  Helpers.check_bool "x ^ x = 0" true (Lit.equal (Net.add_xor net a a) Lit.false_);
  Helpers.check_bool "x ^ ~x = 1" true
    (Lit.equal (Net.add_xor net a (Lit.neg a)) Lit.true_);
  Helpers.check_bool "x ^ 0 = x" true (Lit.equal (Net.add_xor net a Lit.false_) a);
  (* mux(s, x, x) is semantically x but the AIG strash does not
     simplify across the OR: only sweeping would merge it *)
  Helpers.check_bool "mux(1,x,y) = x" true
    (Lit.equal (Net.add_mux net ~sel:Lit.true_ ~t1:a ~t0:(Net.add_input net "y")) a)

let test_strash () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let g1 = Net.add_and net a b in
  let g2 = Net.add_and net b a in
  Helpers.check_bool "commutative sharing" true (Lit.equal g1 g2);
  let g3 = Net.add_and net (Lit.neg a) b in
  Helpers.check_bool "distinct signs distinct nodes" false (Lit.equal g1 g3);
  Helpers.check_int "only two AND nodes" 2 (Net.num_ands net)

let test_registers () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r = Net.add_reg net ~init:Net.Init1 "r" in
  Net.set_next net r a;
  Helpers.check_int "one reg" 1 (Net.num_regs net);
  Helpers.check_bool "is_reg" true (Net.is_reg net (Lit.var r));
  Helpers.check_bool "not latch" false (Net.is_latch net (Lit.var r));
  let reg = Net.reg_of net (Lit.var r) in
  Helpers.check_bool "next stored" true (Lit.equal reg.Net.next a);
  Helpers.check_bool "init stored" true (reg.Net.r_init = Net.Init1);
  (match Net.node net (Lit.var r) with
  | Net.Reg _ -> ()
  | Net.Const | Net.Input _ | Net.And _ | Net.Latch _ ->
    Alcotest.fail "expected Reg node");
  Net.check net

let test_latches () =
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let l = Net.add_latch net ~phase:1 "l" in
  Net.set_latch_data net l a;
  Helpers.check_int "one latch" 1 (Net.num_latches net);
  Helpers.check_int "phases" 2 (Net.phases net);
  Helpers.check_bool "latch phase" true ((Net.latch_of net (Lit.var l)).Net.l_phase = 1);
  Alcotest.check_raises "bad phase rejected" (Invalid_argument "Net.add_latch: phase")
    (fun () -> ignore (Net.add_latch net ~phase:2 "bad"))

let test_fanout () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let g = Net.add_and net a b in
  let r = Net.add_reg net "r" in
  Net.set_next net r g;
  let fo = Net.fanouts net in
  Helpers.check_int "a feeds the AND" 1 (Array.length fo.(Lit.var a));
  Helpers.check_int "g feeds the reg" 1 (Array.length fo.(Lit.var g));
  Helpers.check_int "r feeds nothing" 0 (Array.length fo.(Lit.var r))

let test_outputs_targets () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  Net.add_output net "o" a;
  Net.add_target net "t" (Lit.neg a);
  Helpers.check_int "outputs" 1 (List.length (Net.outputs net));
  Helpers.check_int "targets" 1 (List.length (Net.targets net));
  Helpers.check_bool "target literal" true
    (Lit.equal (List.assoc "t" (Net.targets net)) (Lit.neg a))

let test_check_rejects_misuse () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  Alcotest.check_raises "set_next on input"
    (Invalid_argument "Net.set_next: not a register") (fun () ->
      Net.set_next net a a);
  Alcotest.check_raises "set_next on negated literal"
    (Invalid_argument "Net.set_next: negated register literal") (fun () ->
      let r = Net.add_reg net "r" in
      Net.set_next net (Lit.neg r) a)

let test_iteration_order () =
  (* identifier order is a topological order of the combinational
     logic: AND fanins always precede the gate *)
  let net, _ =
    Helpers.netlist (fun net ->
        let a = Net.add_input net "a" in
        let b = Net.add_input net "b" in
        let g = Net.add_and net a b in
        Net.add_and net g (Lit.neg a))
  in
  Net.iter_nodes net (fun v node ->
      match node with
      | Net.And (x, y) ->
        Helpers.check_bool "fanin precedes gate" true
          (Lit.var x < v && Lit.var y < v)
      | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> ())

let prop_strash_no_duplicates =
  Helpers.qtest "no duplicate AND nodes" QCheck.(int_bound 10000)
    (fun seed ->
      let rng = Workload.Rng.create seed in
      let net, _ = Helpers.rand_net rng ~inputs:4 ~regs:3 ~gates:20 in
      (* every (a, b) fanin pair occurs at most once *)
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      Net.iter_nodes net (fun _ node ->
          match node with
          | Net.And (a, b) ->
            let key = (Lit.to_int a, Lit.to_int b) in
            if Hashtbl.mem seen key then ok := false
            else Hashtbl.add seen key ();
          | Net.Const | Net.Input _ | Net.Reg _ | Net.Latch _ -> ());
      !ok)

(* ---- canonical fingerprints (the serve bound-cache key) ---- *)

let test_fingerprint_build_order () =
  (* the same structure built in two different vertex orders (inputs
     and independent gates swapped) must fingerprint identically:
     vertices are referenced by structural hash, never by id *)
  let build swapped =
    let net = Net.create () in
    let a, b =
      if swapped then
        let b = Net.add_input net "b" in
        let a = Net.add_input net "a" in
        (a, b)
      else
        let a = Net.add_input net "a" in
        let b = Net.add_input net "b" in
        (a, b)
    in
    let g1, g2 =
      if swapped then
        let y = Net.add_or net a b in
        let x = Net.add_and net a b in
        (x, y)
      else
        let x = Net.add_and net a b in
        let y = Net.add_or net a b in
        (x, y)
    in
    let r = Net.add_reg net ~init:Net.Init0 "r" in
    Net.set_next net r (Net.add_xor net g1 g2);
    Net.add_target net "t" r;
    Net.add_output net "t" r;
    net
  in
  Helpers.check Alcotest.string "whole-net fingerprint"
    (Net.fingerprint (build false))
    (Net.fingerprint (build true));
  let t net = List.assoc "t" (Net.targets net) in
  let n0 = build false and n1 = build true in
  Helpers.check Alcotest.string "cone fingerprint"
    (Net.cone_fingerprint n0 (t n0))
    (Net.cone_fingerprint n1 (t n1))

let prop_cone_fingerprint_restrict_invariant =
  (* cone-of-influence restriction rebuilds the cone's vertices with
     fresh ids in a different order; the cone fingerprint must not
     notice *)
  Helpers.qtest "cone fingerprint survives restriction"
    QCheck.(int_bound 10000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:4 ~regs:3 ~gates:12 in
      let cone = Workload.Shrink.restrict net ~target:"t" in
      let t' = List.assoc "t" (Net.targets cone) in
      String.equal (Net.cone_fingerprint net t) (Net.cone_fingerprint cone t'))

let prop_cone_fingerprint_mutation_changes_key =
  (* any accepted Shrink mutation is a structural change to the cone,
     so a cached result keyed by the old fingerprint can never be
     served for the mutated design *)
  Helpers.qtest "shrink mutations change the fingerprint"
    QCheck.(int_bound 10000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:4 ~regs:3 ~gates:12 in
      let r = Workload.Shrink.run ~keep:(fun _ -> true) net ~target:"t" in
      r.Workload.Shrink.shrunk_size >= r.Workload.Shrink.original_size
      ||
      let t' = List.assoc "t" (Net.targets r.Workload.Shrink.net) in
      not
        (String.equal (Net.cone_fingerprint net t)
           (Net.cone_fingerprint r.Workload.Shrink.net t')))

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "structural hashing" `Quick test_strash;
    Alcotest.test_case "registers" `Quick test_registers;
    Alcotest.test_case "latches" `Quick test_latches;
    Alcotest.test_case "fanout computation" `Quick test_fanout;
    Alcotest.test_case "outputs and targets" `Quick test_outputs_targets;
    Alcotest.test_case "misuse rejected" `Quick test_check_rejects_misuse;
    Alcotest.test_case "topological id order" `Quick test_iteration_order;
    prop_strash_no_duplicates;
    Alcotest.test_case "fingerprint ignores build order" `Quick
      test_fingerprint_build_order;
    prop_cone_fingerprint_restrict_invariant;
    prop_cone_fingerprint_mutation_changes_key;
  ]
