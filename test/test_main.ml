let () =
  (* every genuine Sat anywhere in the suite gets its model
     cross-checked inside the solver (see Solver.check_model) *)
  Unix.putenv "DIAMBOUND_CHECK_MODEL" "1";
  Alcotest.run "diambound"
    [
      ("lit", Test_lit.suite);
      ("net", Test_net.suite);
      ("scc", Test_scc.suite);
      ("coi", Test_coi.suite);
      ("vec", Test_vec.suite);
      ("sim", Test_sim.suite);
      ("sat", Test_sat.suite);
      ("backend", Test_backend.suite);
      ("simplify", Test_simplify.suite);
      ("proof", Test_proof.suite);
      ("stats", Test_stats.suite);
      ("log", Test_log.suite);
      ("trace", Test_trace.suite);
      ("baseline", Test_baseline.suite);
      ("budget", Test_budget.suite);
      ("bdd", Test_bdd.suite);
      ("textio", Test_textio.suite);
      ("encode", Test_encode.suite);
      ("equiv", Test_equiv.suite);
      ("gen", Test_gen.suite);
      ("rebuild", Test_rebuild.suite);
      ("com", Test_com.suite);
      ("retime", Test_retime.suite);
      ("phase", Test_phase.suite);
      ("cslow", Test_cslow.suite);
      ("enlarge", Test_enlarge.suite);
      ("unsound", Test_unsound.suite);
      ("classify", Test_classify.suite);
      ("bound", Test_bound.suite);
      ("translate", Test_translate.suite);
      ("exact", Test_exact.suite);
      ("recurrence", Test_recurrence.suite);
      ("bmc", Test_bmc.suite);
      ("van_eijk", Test_van_eijk.suite);
      ("induction", Test_induction.suite);
      ("parametric", Test_parametric.suite);
      ("aiger", Test_aiger.suite);
      ("vcd", Test_vcd.suite);
      ("engine", Test_engine.suite);
      ("certify", Test_certify.suite);
      ("chaos", Test_chaos.suite);
      ("symbolic", Test_symbolic.suite);
      ("pipeline", Test_pipeline.suite);
      ("workload", Test_workload.suite);
      ("sched", Test_sched.suite);
      ("portfolio", Test_portfolio.suite);
      ("campaign", Test_campaign.suite);
      ("serve", Test_serve.suite);
    ]
