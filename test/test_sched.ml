(* Sched.Pool: worker lifecycle, ordered map, graceful shutdown. *)

let test_map_preserves_order () =
  Sched.Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 Fun.id in
      let ys = Sched.Pool.map pool (fun x -> x * x) xs in
      Helpers.check_bool "ordered squares" true
        (List.equal Int.equal ys (List.map (fun x -> x * x) xs)))

let test_map_more_jobs_than_workers () =
  (* 100 jobs over a 2-worker pool: everything completes, in order *)
  Sched.Pool.with_pool ~jobs:2 (fun pool ->
      let ys = Sched.Pool.map pool (fun x -> x + 1) (List.init 100 Fun.id) in
      Helpers.check_int "all completed" 100 (List.length ys);
      Helpers.check_int "last" 100 (List.nth ys 99))

let test_shutdown_joins_cleanly () =
  (* shutdown must join every worker: afterwards no submitted work can
     run, and a second shutdown is a no-op *)
  let pool = Sched.Pool.create ~jobs:3 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 10 do
    Sched.Pool.submit pool (fun () -> Atomic.incr hits)
  done;
  Sched.Pool.shutdown pool;
  Helpers.check_int "all jobs drained before join" 10 (Atomic.get hits);
  Sched.Pool.shutdown pool;
  (* idempotent *)
  match Sched.Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_map_reraises_job_exception () =
  match
    Sched.Pool.with_pool ~jobs:2 (fun pool ->
        Sched.Pool.map pool
          (fun x -> if x = 3 then failwith "boom" else x)
          (List.init 8 Fun.id))
  with
  | _ -> Alcotest.fail "expected the job exception to propagate"
  | exception Failure msg -> Helpers.check Alcotest.string "msg" "boom" msg

let test_with_pool_shuts_down_on_exception () =
  (* the pool must not leak domains when the body raises; if workers
     leaked, alcotest would hang at exit rather than fail, so the real
     assertion is that the exception arrives at all *)
  match
    Sched.Pool.with_pool ~jobs:2 (fun _pool -> failwith "body blew up")
  with
  | () -> Alcotest.fail "expected the body exception"
  | exception Failure msg ->
    Helpers.check Alcotest.string "msg" "body blew up" msg

let test_jobs_clamped () =
  (* absurd requests clamp to the host's domain count instead of
     spawning hundreds of domains *)
  Sched.Pool.with_pool ~jobs:10_000 (fun pool ->
      Helpers.check_bool "clamped" true
        (Sched.Pool.size pool <= Domain.recommended_domain_count ()));
  Sched.Pool.with_pool ~jobs:0 (fun pool ->
      Helpers.check_int "at least one worker" 1 (Sched.Pool.size pool))

let test_default_jobs_env () =
  (* Sched.default_jobs reads DIAMBOUND_JOBS; garbage falls back to 1 *)
  let with_env v f =
    let old = Sys.getenv_opt "DIAMBOUND_JOBS" in
    Unix.putenv "DIAMBOUND_JOBS" v;
    Fun.protect f ~finally:(fun () ->
        Unix.putenv "DIAMBOUND_JOBS" (Option.value old ~default:""))
  in
  with_env "3" (fun () ->
      Helpers.check_int "env honoured" 3 (Sched.default_jobs ()));
  with_env "nope" (fun () ->
      Helpers.check_int "garbage falls back" 1 (Sched.default_jobs ()))

let counter name = Obs.Stats.counter_value (Obs.Stats.counter name)

let test_try_submit_rejects_when_full () =
  (* a blocked worker plus a bounded queue: try_submit must REJECT the
     overflow rather than deadlock the caller *)
  let pool = Sched.Pool.create ~capacity:1 ~jobs:1 () in
  let rejected_before = counter "sched.jobs_rejected" in
  let gate = Mutex.create () in
  let started = Atomic.make false in
  Mutex.lock gate;
  Sched.Pool.submit pool (fun () ->
      Atomic.set started true;
      Mutex.lock gate;
      Mutex.unlock gate);
  (* wait for the worker to pick the blocker up, so queue occupancy
     below is deterministic *)
  while not (Atomic.get started) do
    Unix.sleepf 0.001
  done;
  Helpers.check_bool "first fits the queue" true
    (Sched.Pool.try_submit pool (fun () -> ()));
  Helpers.check_bool "second rejected, not blocked" false
    (Sched.Pool.try_submit pool (fun () -> ()));
  Helpers.check_int "rejection counted" (rejected_before + 1)
    (counter "sched.jobs_rejected");
  Mutex.unlock gate;
  Sched.Pool.shutdown pool;
  Helpers.check_bool "rejected after shutdown" false
    (Sched.Pool.try_submit pool (fun () -> ()))

let test_poison_heals () =
  (* a poisoned worker is detected, joined and respawned; the pool
     keeps serving jobs afterwards *)
  let restarts_before = counter "sched.worker_restarts" in
  Sched.Pool.with_pool ~jobs:2 (fun pool ->
      Sched.Pool.submit pool (fun () -> raise Sched.Pool.Poison);
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_heal () =
        if Sched.Pool.heal pool > 0 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "worker never died / healed"
        else begin
          Unix.sleepf 0.002;
          wait_heal ()
        end
      in
      wait_heal ();
      Helpers.check_int "restart counted" (restarts_before + 1)
        (counter "sched.worker_restarts");
      let ys = Sched.Pool.map pool (fun x -> x * 2) [ 1; 2; 3; 4 ] in
      Helpers.check_bool "healed pool still works" true
        (List.equal Int.equal ys [ 2; 4; 6; 8 ]))

let test_shutdown_heals_remaining_dead () =
  (* workers poisoned and never healed must not wedge shutdown *)
  Sched.Pool.with_pool ~jobs:2 (fun pool ->
      Sched.Pool.submit pool (fun () -> raise Sched.Pool.Poison);
      Sched.Pool.submit pool (fun () -> raise Sched.Pool.Poison))

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map with more jobs than workers" `Quick
      test_map_more_jobs_than_workers;
    Alcotest.test_case "shutdown joins cleanly" `Quick
      test_shutdown_joins_cleanly;
    Alcotest.test_case "map re-raises job exceptions" `Quick
      test_map_reraises_job_exception;
    Alcotest.test_case "with_pool shuts down on exception" `Quick
      test_with_pool_shuts_down_on_exception;
    Alcotest.test_case "jobs clamped to sane range" `Quick test_jobs_clamped;
    Alcotest.test_case "default_jobs reads the environment" `Quick
      test_default_jobs_env;
    Alcotest.test_case "try_submit rejects when full" `Quick
      test_try_submit_rejects_when_full;
    Alcotest.test_case "poisoned worker heals" `Quick test_poison_heals;
    Alcotest.test_case "shutdown survives unhealed dead workers" `Quick
      test_shutdown_heals_remaining_dead;
  ]
