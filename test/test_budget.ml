module Net = Netlist.Net
module Solver = Sat.Solver
module Cnf = Sat.Cnf
module Budget = Obs.Budget

let test_budget_basics () =
  Helpers.check_bool "unlimited never expires" false
    (Budget.expired Budget.unlimited);
  Helpers.check_bool "unlimited is unlimited" true
    (Budget.is_unlimited Budget.unlimited);
  Helpers.check_bool "empty create is unlimited" true
    (Budget.is_unlimited (Budget.create ()));
  let dead = Budget.create ~timeout_s:0.0 () in
  Helpers.check_bool "zero timeout expires at once" true (Budget.expired dead);
  Helpers.check_bool "slice of expired stays expired" true
    (Budget.expired (Budget.slice dead ~ways:4));
  let b = Budget.create ~conflicts:7 ~bdd_nodes:100 () in
  Helpers.check_bool "no deadline never expires" false (Budget.expired b);
  let s = Budget.slice b ~ways:3 in
  Helpers.check_bool "slice carries conflicts" true
    (Budget.conflicts s = Some 7);
  Helpers.check_bool "slice carries bdd nodes" true
    (Budget.bdd_nodes s = Some 100)

(* an unsatisfiable pigeonhole instance: hard enough that one conflict
   cannot possibly finish it *)
let pigeonhole ~holes =
  let pigeons = holes + 1 in
  let var p h = Solver.pos ((p * holes) + h) in
  let in_some_hole =
    List.init pigeons (fun p -> List.init holes (fun h -> var p h))
  in
  let exclusive =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p ->
            List.filter_map
              (fun q ->
                if q > p then
                  Some [ Solver.negate (var p h); Solver.negate (var q h) ]
                else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  { Cnf.num_vars = pigeons * holes; clauses = in_some_hole @ exclusive }

let test_solver_conflict_budget () =
  let s = Solver.create () in
  Cnf.load s (pigeonhole ~holes:5);
  Helpers.check_bool "tiny conflict budget gives up" true
    (Solver.solve ~max_conflicts:1 s = Solver.Unknown);
  (* the same solver still finishes the job once the limit is lifted *)
  Helpers.check_bool "unbudgeted solve still decides" true
    (Solver.solve s = Solver.Unsat)

let test_solver_should_stop () =
  let s = Solver.create () in
  Cnf.load s (pigeonhole ~holes:5);
  Helpers.check_bool "external stop signal gives up" true
    (Solver.solve ~should_stop:(fun () -> true) s = Solver.Unknown)

let random_cnf seed =
  let rng = Workload.Rng.create seed in
  let nv = 1 + Workload.Rng.int rng 10 in
  let nc = 1 + Workload.Rng.int rng 35 in
  let clauses =
    List.init nc (fun _ ->
        let len = 1 + Workload.Rng.int rng 4 in
        List.init len (fun _ ->
            let v = Workload.Rng.int rng nv in
            if Workload.Rng.bool rng then Solver.pos v else Solver.neg_of v))
  in
  { Cnf.num_vars = nv; clauses }

(* the budget soundness property: a budgeted solve may give up, but a
   definite answer it does return is never wrong *)
let prop_budget_never_wrong =
  Helpers.qtest ~count:300 "budgeted solver is never wrong, only unsure"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let cnf = random_cnf seed in
      let s = Solver.create () in
      Cnf.load s cnf;
      match Solver.solve ~max_conflicts:1 s with
      | Solver.Unknown -> true
      | Solver.Sat -> Cnf.eval (Solver.model s) cnf
      | Solver.Unsat -> Cnf.brute_force cnf = None)

let test_bmc_deadline () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r (Net.add_xor net r a);
  Net.add_target net "t" r;
  let budget = Budget.create ~timeout_s:0.0 () in
  (match Bmc.check ~budget net ~target:"t" ~depth:8 with
  | Bmc.Unknown { after; _ } ->
    Helpers.check_bool "no depth completed" true (after < 0)
  | Bmc.Hit _ | Bmc.No_hit _ -> Alcotest.fail "expired budget must give up");
  match Bmc.prove ~budget net ~target:"t" ~bound:4 with
  | `Unknown -> ()
  | `Proved | `Cex _ -> Alcotest.fail "expired budget must not conclude"

(* the fault-injection scenario: a netlist whose every strategy is
   expensive, under a deadline that has already passed *)
let hard_net () =
  let net = Net.create () in
  let rng = Workload.Rng.create 3 in
  let ins = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let f = Workload.Gen.fsm net rng ~name:"f" ~bits:30 ~inputs:ins in
  let c =
    Workload.Gen.counter net ~name:"c" ~bits:10 ~enable:f.Workload.Gen.out
  in
  Net.add_target net "t" c.Workload.Gen.out;
  net

let test_engine_expired_deadline () =
  let net = hard_net () in
  let t0 = Unix.gettimeofday () in
  let budget = Budget.create ~timeout_s:0.0 () in
  match Core.Engine.verify ~budget net ~target:"t" with
  | Core.Engine.Inconclusive { attempts } ->
    let elapsed = Unix.gettimeofday () -. t0 in
    Helpers.check_bool "every strategy was still recorded" true
      (List.length attempts >= 5);
    List.iter
      (fun a ->
        Helpers.check_bool
          (Printf.sprintf "%s stood down on budget" a.Core.Engine.strategy)
          true
          (a.Core.Engine.reason = Core.Engine.budget_reason))
      attempts;
    (* degradation must be graceful: an expired deadline means a
       near-immediate answer, not a full run *)
    Helpers.check_bool "gave up promptly" true (elapsed < 5.0)
  | v ->
    Alcotest.fail
      (Format.asprintf "expired budget must be inconclusive, got %a"
         Core.Engine.pp_verdict v)

let test_engine_conflict_starvation () =
  (* per-call allowances (rather than a deadline) must also degrade to
     Inconclusive, with the SAT-driven strategies blaming the budget *)
  let net = hard_net () in
  let budget = Budget.create ~conflicts:0 ~bdd_nodes:2 () in
  match Core.Engine.verify ~budget net ~target:"t" with
  | Core.Engine.Inconclusive { attempts } ->
    Helpers.check_bool "some strategy blamed the budget" true
      (List.exists
         (fun a -> a.Core.Engine.reason = Core.Engine.budget_reason)
         attempts)
  | v ->
    Alcotest.fail
      (Format.asprintf "starved budget must be inconclusive, got %a"
         Core.Engine.pp_verdict v)

let test_cancellation_token () =
  let cancel = Atomic.make false in
  let b = Budget.with_cancel (Budget.create ()) cancel in
  Helpers.check_bool "cancellable budget is not unlimited" false
    (Budget.is_unlimited b);
  Helpers.check_bool "not expired before the flip" false (Budget.expired b);
  Helpers.check_bool "not cancelled before the flip" false (Budget.cancelled b);
  (* cancellation must surface through should_stop even without a
     deadline — that closure is the solver's only polling point *)
  (match Budget.should_stop b with
  | Some stop ->
    Helpers.check_bool "stop not yet" false (stop ());
    Atomic.set cancel true;
    Helpers.check_bool "stop after flip" true (stop ())
  | None -> Alcotest.fail "cancellable budget must expose should_stop");
  Helpers.check_bool "expired after flip" true (Budget.expired b);
  Helpers.check_bool "cancelled after flip" true (Budget.cancelled b);
  (* slices share the parent's token: cancelling the parent cancels
     every slice already handed out *)
  Atomic.set cancel false;
  let s = Budget.slice b ~ways:4 in
  Helpers.check_bool "slice not cancelled" false (Budget.cancelled s);
  Atomic.set cancel true;
  Helpers.check_bool "slice cancelled with parent" true (Budget.cancelled s)

let test_slice_clamp () =
  (* slicing an expired budget must keep its past deadline rather than
     minting a momentarily-fresh [now +. 0.] one: a degenerate slice
     stays expired, so the engine records the attempt instead of
     silently skipping the strategy *)
  let dead = Budget.create ~timeout_s:0.0 () in
  ignore (Budget.expired dead);
  let s = Budget.slice dead ~ways:7 in
  Helpers.check_bool "degenerate slice is expired at once" true
    (Budget.expired s);
  let s2 = Budget.slice s ~ways:3 in
  Helpers.check_bool "re-slicing stays expired" true (Budget.expired s2)

let test_fileout_warns () =
  Helpers.check_bool "unwritable path returns false" false
    (Obs.Fileout.write_or_warn ~what:"test artifact"
       "/nonexistent-dir/deeper/x.txt" (fun oc -> output_string oc "x"));
  let path = Filename.temp_file "diambound_fileout" ".txt" in
  Helpers.check_bool "writable path returns true" true
    (Obs.Fileout.write_or_warn ~what:"test artifact" path (fun oc ->
         output_string oc "payload"));
  let ic = open_in path in
  let got = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Helpers.check_bool "content written" true (got = "payload")

let suite =
  [
    Alcotest.test_case "budget basics" `Quick test_budget_basics;
    Alcotest.test_case "solver conflict budget" `Quick
      test_solver_conflict_budget;
    Alcotest.test_case "solver external stop" `Quick test_solver_should_stop;
    Alcotest.test_case "BMC deadline" `Quick test_bmc_deadline;
    Alcotest.test_case "engine expired deadline" `Quick
      test_engine_expired_deadline;
    Alcotest.test_case "engine conflict starvation" `Quick
      test_engine_conflict_starvation;
    Alcotest.test_case "cancellation token" `Quick test_cancellation_token;
    Alcotest.test_case "slice clamp on expired budgets" `Quick
      test_slice_clamp;
    Alcotest.test_case "fileout warns" `Quick test_fileout_warns;
    prop_budget_never_wrong;
  ]
