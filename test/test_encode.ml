module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim
module Solver = Backend

(* The pivotal encode-layer property: constraining the unrolling's
   input (and Init_x) variables to concrete values and solving must
   reproduce exactly the simulator's trace. *)
let unroll_matches_sim seed =
  let rng = Workload.Rng.create seed in
  let net, pool = Helpers.rand_net rng ~inputs:3 ~regs:4 ~gates:10 in
  let probe = Workload.Rng.pick rng pool in
  let depth = 6 in
  let solver = Solver.create () in
  let unroll = Encode.Unroll.create solver net in
  (* force every input frame to a deterministic pseudo-random bit *)
  let bit v t = Hashtbl.hash (seed, v, t) land 1 = 1 in
  List.iter
    (fun v ->
      for t = 0 to depth do
        let l = Encode.Unroll.lit_at unroll (Lit.make v) t in
        Solver.add_clause solver [ (if bit v t then l else Solver.negate l) ]
      done)
    (Net.inputs net);
  (* force nondeterministic initial values similarly *)
  ignore (Encode.Unroll.lit_at unroll probe depth);
  List.iter
    (fun r ->
      if (Net.reg_of net r).Net.r_init = Net.Init_x then begin
        let l = Encode.Unroll.lit_at unroll (Lit.make r) 0 in
        Solver.add_clause solver [ (if bit r (-1) then l else Solver.negate l) ]
      end)
    (Net.regs net);
  (match Solver.solve solver with
  | Solver.Unsat | Solver.Unknown _ ->
    Alcotest.fail "fully constrained unrolling must be SAT"
  | Solver.Sat -> ());
  (* simulate the same stimulus *)
  let init v = Sim.value_of_bool (bit v (-1)) in
  let s = Sim.create_with ~init net in
  let ok = ref true in
  for t = 0 to depth do
    Sim.step s (fun v -> Sim.value_of_bool (bit v t));
    let expected = Sim.value s probe in
    let got = Encode.Unroll.value_at unroll probe t in
    (match expected with
    | Sim.V0 -> if got then ok := false
    | Sim.V1 -> if not got then ok := false
    | Sim.Vx -> ())
  done;
  !ok

let prop_unroll_matches_sim =
  Helpers.qtest ~count:60 "unrolling agrees with the simulator"
    QCheck.(int_bound 1000000)
    unroll_matches_sim

let test_frame_is_combinational () =
  (* the single frame treats registers as free variables: a register
     output can take either value regardless of its init *)
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r Lit.false_;
  Net.add_target net "t" r;
  let solver = Solver.create () in
  let frame = Encode.Frame.create solver net in
  let l = Encode.Frame.lit frame r in
  Helpers.check_bool "reg free high" true
    (Solver.solve ~assumptions:[ l ] solver = Solver.Sat);
  Helpers.check_bool "reg free low" true
    (Solver.solve ~assumptions:[ Solver.negate l ] solver = Solver.Sat)

let test_frame_and_semantics () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let b = Net.add_input net "b" in
  let g = Net.add_and net a (Lit.neg b) in
  let solver = Solver.create () in
  let frame = Encode.Frame.create solver net in
  let la = Encode.Frame.lit frame a in
  let lb = Encode.Frame.lit frame b in
  let lg = Encode.Frame.lit frame g in
  Helpers.check_bool "g with a=1,b=0" true
    (Solver.solve ~assumptions:[ la; Solver.negate lb; lg ] solver = Solver.Sat);
  Helpers.check_bool "g impossible with b=1" true
    (Solver.solve ~assumptions:[ lb; lg ] solver = Solver.Unsat)

let test_unroll_latch_phases () =
  (* latch transparency in the unrolling mirrors Sim: a phase-0 latch
     is transparent at even times *)
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let l = Net.add_latch net ~init:Net.Init0 ~phase:0 "l" in
  Net.set_latch_data net l a;
  let solver = Solver.create () in
  let unroll = Encode.Unroll.create solver net in
  let at t = Encode.Unroll.lit_at unroll l t in
  let a_at t = Encode.Unroll.lit_at unroll a t in
  (* t=0 transparent: l = a@0; t=1 opaque: l = l@0 *)
  Helpers.check_bool "transparent" true
    (Solver.solve ~assumptions:[ a_at 0; Solver.negate (at 0) ] solver
    = Solver.Unsat);
  Helpers.check_bool "hold" true
    (Solver.solve ~assumptions:[ at 0; Solver.negate (at 1) ] solver
    = Solver.Unsat)

let test_init_x_consistency () =
  (* the same Init_x register at time 0 is a single free variable, not
     one per reference *)
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init_x "r" in
  Net.set_next net r r;
  let solver = Solver.create () in
  let unroll = Encode.Unroll.create solver net in
  let l0 = Encode.Unroll.lit_at unroll r 0 in
  let l0' = Encode.Unroll.lit_at unroll r 0 in
  Helpers.check_bool "same literal" true (l0 = l0');
  (* and the self-loop aliases later times to it *)
  let l3 = Encode.Unroll.lit_at unroll r 3 in
  Helpers.check_bool "aliased through the loop" true (l0 = l3)

let test_input_frames_sorted () =
  (* regression: input_frames/init_x_assignments folded over hashtables,
     so counterexample extraction order depended on hashing *)
  let net = Net.create () in
  let inputs = List.init 8 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let regs =
    List.init 3 (fun i -> Net.add_reg net ~init:Net.Init_x (Printf.sprintf "r%d" i))
  in
  let any = Net.add_or_list net (inputs @ regs) in
  List.iter (fun r -> Net.set_next net r any) regs;
  Net.add_target net "t" any;
  let solver = Solver.create () in
  let unroll = Encode.Unroll.create solver net in
  ignore (Encode.Unroll.lit_at unroll any 4);
  Helpers.check_bool "sat" true (Solver.solve solver = Solver.Sat);
  let frames = Encode.Unroll.input_frames unroll ~upto:4 in
  Helpers.check_bool "non-trivial frame list" true (List.length frames > 8);
  let keys = List.map (fun (v, t, _) -> (t, v)) frames in
  Helpers.check_bool "input frames sorted by (time, var)" true
    (List.sort compare keys = keys);
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | [ _ ] | [] -> true
  in
  Helpers.check_bool "no duplicate (time, var) pairs" true
    (strictly_increasing keys);
  let init_vars = List.map fst (Encode.Unroll.init_x_assignments unroll) in
  Helpers.check_int "all Init_x registers present" 3 (List.length init_vars);
  Helpers.check_bool "init_x sorted by var" true
    (List.sort compare init_vars = init_vars)

let suite =
  [
    Alcotest.test_case "input frames sorted" `Quick test_input_frames_sorted;
    Alcotest.test_case "frame is combinational" `Quick test_frame_is_combinational;
    Alcotest.test_case "frame AND semantics" `Quick test_frame_and_semantics;
    Alcotest.test_case "unroll latch phases" `Quick test_unroll_latch_phases;
    Alcotest.test_case "Init_x consistency" `Quick test_init_x_consistency;
    prop_unroll_matches_sim;
  ]
