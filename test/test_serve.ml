(* diam serve: the wire schema, the LRU bound cache, the per-request
   exception barrier, and full in-memory session drills (supervision,
   backpressure, chaos-tested cache coherence). *)

module Request = Serve.Request
module Exec = Serve.Exec
module Server = Serve.Server
module Bcache = Core.Bcache
module Engine = Core.Engine

let counter name = Obs.Stats.counter_value (Obs.Stats.counter name)

(* inline .bench fixtures: a target that can never be hit (proved at
   depth 0 by the structural bound) and one hit immediately *)
let proved_bench = "OUTPUT(t0)\nconst0 = CONST0()\nt0 = BUFF(const0)"
let violated_bench = "OUTPUT(t0)\nconst1 = CONST1()\nt0 = BUFF(const1)"

let mb = 1024 * 1024

let fresh_cache () = Bcache.create ~max_bytes:mb ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_contains what sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected %S inside %S" what sub s

(* ---- request parsing ---- *)

let test_parse_roundtrip () =
  match
    Request.parse
      {|{"id":"r1","op":"verify","netlist":"OUTPUT(t)","target":"t","timeout_ms":250,"certify":false,"cutoff":9,"chaos":"flip-to-sat","future_field":[1,2]}|}
  with
  | Error e -> Alcotest.failf "parse failed: %s" e.Request.detail
  | Ok r ->
    Helpers.check_bool "id" true (r.Request.id = Some "r1");
    Helpers.check_bool "op" true (r.Request.op = Request.Verify);
    Helpers.check_bool "source" true
      (r.Request.source = Some (Request.Inline "OUTPUT(t)"));
    Helpers.check_bool "target" true (r.Request.target = Some "t");
    Helpers.check_bool "timeout" true (r.Request.timeout_ms = Some 250);
    Helpers.check_bool "certify" true (r.Request.certify = false);
    Helpers.check_bool "cutoff" true (r.Request.cutoff = Some 9);
    Helpers.check_bool "chaos" true (r.Request.chaos = Some "flip-to-sat")

let test_parse_defaults () =
  match Request.parse {|{"netlist_file":"x.bench"}|} with
  | Error e -> Alcotest.failf "parse failed: %s" e.Request.detail
  | Ok r ->
    Helpers.check_bool "op defaults to verify" true
      (r.Request.op = Request.Verify);
    Helpers.check_bool "certify defaults to true" true r.Request.certify;
    Helpers.check_bool "file source" true
      (r.Request.source = Some (Request.File "x.bench"))

let test_parse_errors () =
  let code line =
    match Request.parse line with
    | Ok _ -> Alcotest.failf "expected an error for %s" line
    | Error e -> (e.Request.err_id, e.Request.code)
  in
  Helpers.check_bool "malformed json" true
    (snd (code "{nope") = "bad-json");
  Helpers.check_bool "non-object" true (snd (code "[1,2]") = "bad-request");
  (* the id is salvaged even when another field is mistyped, so the
     error response still correlates with its request *)
  Helpers.check_bool "typed field with salvaged id" true
    (code {|{"id":"x","op":"verify","timeout_ms":"soon"}|}
    = (Some "x", "bad-request"));
  Helpers.check_bool "unknown op" true
    (snd (code {|{"op":"dance"}|}) = "bad-request");
  Helpers.check_bool "exclusive sources" true
    (snd (code {|{"netlist":"a","netlist_file":"b"}|}) = "bad-request")

let test_coalesce_key () =
  let req line =
    match Request.parse line with
    | Ok r -> r
    | Error e -> Alcotest.failf "parse: %s" e.Request.detail
  in
  let k1 = Request.coalesce_key (req {|{"id":"a","netlist":"N"}|}) in
  let k2 = Request.coalesce_key (req {|{"id":"b","netlist":"N"}|}) in
  Helpers.check_bool "id excluded from the key" true (k1 = k2 && k1 <> None);
  Helpers.check_bool "different payloads differ" true
    (k1 <> Request.coalesce_key (req {|{"netlist":"M"}|}));
  Helpers.check_bool "chaos never coalesces" true
    (Request.coalesce_key (req {|{"netlist":"N","chaos":"crash"}|}) = None);
  Helpers.check_bool "only verify coalesces" true
    (Request.coalesce_key (req {|{"op":"ping"}|}) = None)

(* ---- the LRU bound cache ---- *)

let proved_payload = Bcache.Proved { strategy = "s"; depth = 1 }

let test_bcache_lru_eviction () =
  (* size the budget from a measured entry so the estimate's constants
     stay internal to Bcache *)
  let probe = Bcache.create ~max_bytes:mb () in
  Bcache.add probe "k1" proved_payload;
  let entry = Bcache.bytes probe in
  let c = Bcache.create ~max_bytes:((2 * entry) + (entry / 2)) () in
  Bcache.add c "k1" proved_payload;
  Bcache.add c "k2" proved_payload;
  Helpers.check_int "both resident" 2 (Bcache.length c);
  (* touch k1 so k2 is now the cold end *)
  Helpers.check_bool "k1 hit" true (Bcache.find c "k1" <> None);
  Bcache.add c "k3" proved_payload;
  Helpers.check_int "evicted down to budget" 2 (Bcache.length c);
  Helpers.check_bool "recently-used survived" true (Bcache.peek c "k1" <> None);
  Helpers.check_bool "cold end evicted" true (Bcache.peek c "k2" = None);
  Helpers.check_bool "new entry resident" true (Bcache.peek c "k3" <> None)

let test_bcache_oversize_refused () =
  let probe = Bcache.create ~max_bytes:mb () in
  Bcache.add probe "k" proved_payload;
  let entry = Bcache.bytes probe in
  let c = Bcache.create ~max_bytes:(entry - 1) () in
  Bcache.add c "k" proved_payload;
  Helpers.check_int "refused, not cycled" 0 (Bcache.length c);
  Helpers.check_int "no resident bytes" 0 (Bcache.bytes c)

let test_bcache_purge () =
  let c = fresh_cache () in
  Bcache.add c "v:aa:1" proved_payload;
  Bcache.add c "v:aa:2" proved_payload;
  Bcache.add c "b:bb:1" proved_payload;
  let n =
    Bcache.purge c (fun k _ -> String.length k >= 4 && String.sub k 2 2 = "aa")
  in
  Helpers.check_int "purged the fingerprint's entries" 2 n;
  Helpers.check_int "others survive" 1 (Bcache.length c);
  Helpers.check_bool "survivor is the other cone" true
    (Bcache.peek c "b:bb:1" <> None)

let test_bcache_replace_updates_bytes () =
  let c = fresh_cache () in
  Bcache.add c "k" proved_payload;
  let b1 = Bcache.bytes c in
  Bcache.add c "k"
    (Bcache.Bound { strategy = "a-much-longer-strategy-name"; raw = Core.Sat_bound.of_int 3 });
  Helpers.check_int "still one entry" 1 (Bcache.length c);
  Helpers.check_bool "byte estimate tracked the replacement" true
    (Bcache.bytes c <> b1)

(* ---- the request barrier (Exec) ---- *)

let verify_req ?id ?(netlist = proved_bench) ?target ?timeout_ms
    ?(certify = true) ?cutoff ?chaos () =
  {
    Request.id;
    op = Request.Verify;
    source = Some (Request.Inline netlist);
    target;
    timeout_ms;
    certify;
    cutoff;
    chaos;
  }

let test_exec_barrier () =
  let cache = fresh_cache () in
  let failed code r =
    match Exec.run ~cache ~chaos_seed:None r with
    | Exec.Failed { code = c; _ } -> Helpers.check Alcotest.string "error code" code c
    | Exec.Verdict _ -> Alcotest.failf "expected a %s error" code
  in
  failed "parse-error" (verify_req ~netlist:"t0 = NONSENSE(" ());
  failed "bad-request" (verify_req ~target:"no-such-target" ());
  failed "bad-request" { (verify_req ()) with Request.source = None };
  failed "io-error"
    {
      (verify_req ()) with
      Request.source = Some (Request.File "/nonexistent/x.bench");
    };
  (* chaos without arming is a client error, not an injection *)
  failed "bad-request" (verify_req ~chaos:"flip-to-sat" ());
  (* an armed crash drill dies INSIDE the barrier: structured internal
     error, counted, never an escaped exception *)
  let errors_before = counter "serve.request_error" in
  (match
     Exec.run ~cache ~chaos_seed:(Some 3) (verify_req ~chaos:"crash" ())
   with
  | Exec.Failed { code = c; _ } -> Helpers.check Alcotest.string "code" "internal" c
  | Exec.Verdict _ -> Alcotest.fail "crash drill must fail structurally");
  Helpers.check_int "request_error counted" (errors_before + 1)
    (counter "serve.request_error")

let test_exec_budget_degrades () =
  let cache = fresh_cache () in
  match Exec.run ~cache ~chaos_seed:None (verify_req ~timeout_ms:0 ()) with
  | Exec.Failed { code = c; _ } -> Alcotest.failf "expected a verdict, got %s" c
  | Exec.Verdict { verdict; _ } -> (
    match verdict with
    | Engine.Inconclusive _ ->
      Helpers.check_bool "budget exhaustion reported" true
        (Engine.exhausted verdict)
    | _ -> Alcotest.fail "an expired budget must degrade to unknown")

let test_exec_cache_hit () =
  let cache = fresh_cache () in
  let run () = Exec.run ~cache ~chaos_seed:None (verify_req ()) in
  (match run () with
  | Exec.Verdict { cache = c; _ } -> Helpers.check Alcotest.string "first" "miss" c
  | Exec.Failed { detail; _ } -> Alcotest.failf "first run failed: %s" detail);
  match run () with
  | Exec.Verdict { verdict; cache = c; _ } ->
    Helpers.check Alcotest.string "second" "hit" c;
    Helpers.check_bool "served verdict is the proof" true
      (match verdict with Engine.Proved _ -> true | _ -> false)
  | Exec.Failed { detail; _ } -> Alcotest.failf "second run failed: %s" detail

let test_exec_uncertified_not_cached () =
  (* only certified conclusive results may enter the cache: an
     uncertified run must stay a miss forever *)
  let cache = fresh_cache () in
  let run () =
    Exec.run ~cache ~chaos_seed:None (verify_req ~certify:false ())
  in
  ignore (run ());
  match run () with
  | Exec.Verdict { cache = c; _ } ->
    Helpers.check Alcotest.string "still a miss" "miss" c
  | Exec.Failed { detail; _ } -> Alcotest.failf "run failed: %s" detail

let test_exec_poisoned_hit_purged () =
  (* plant a poisoned entry under the exact key the request computes,
     arm chaos: the differential replay must catch the mismatch, purge
     the cone's entries and serve the fresh answer *)
  let cache = fresh_cache () in
  let net = Textio.Bench_io.parse proved_bench in
  let vkey, _ = Engine.cache_keys ~certify:true net ~target:"t0" in
  Bcache.add cache vkey (Bcache.Proved { strategy = "bogus"; depth = 42 });
  let purged_before = counter "serve.cache.poisoned_purged" in
  (match Exec.run ~cache ~chaos_seed:(Some 11) (verify_req ()) with
  | Exec.Failed { detail; _ } -> Alcotest.failf "run failed: %s" detail
  | Exec.Verdict { verdict; cache = c; _ } ->
    Helpers.check Alcotest.string "served as purged" "purged" c;
    Helpers.check_bool "fresh verdict, not the poisoned one" true
      (match verdict with
      | Engine.Proved { depth; _ } -> depth <> 42
      | _ -> false));
  Helpers.check_bool "purge counted" true
    (counter "serve.cache.poisoned_purged" > purged_before);
  Helpers.check_bool "poisoned entry gone" true (Bcache.peek cache vkey = None)

(* ---- full sessions ---- *)

let run_lines ?cache cfg lines =
  let remaining = ref lines in
  let input () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      Some l
  in
  let out = ref [] in
  let output l = out := l :: !out in
  let ending = Server.run_session ?cache cfg ~input ~output () in
  (ending, List.rev !out)

let inline_verify ?(id = "v") ?(bench = proved_bench) () =
  let escaped = String.concat {|\n|} (String.split_on_char '\n' bench) in
  Printf.sprintf {|{"id":%S,"op":"verify","netlist":"%s"}|} id escaped

let test_session_mixed () =
  let lines =
    [
      {|{"id":"p","op":"ping"}|};
      inline_verify ~id:"v1" ();
      "";
      {|{"id":"d","op":"drain"}|};
      inline_verify ~id:"v2" ();
      "garbage line";
      {|{"id":"bad","op":"verify"}|};
      inline_verify ~id:"v3" ~bench:violated_bench ();
      {|{"id":"s","op":"shutdown"}|};
    ]
  in
  let ending, out = run_lines Server.default_config lines in
  Helpers.check_bool "shutdown honoured" true (ending = Server.Shutdown_requested);
  (* one response per request, in request order; the blank line is free *)
  Helpers.check_int "response per request" 8 (List.length out);
  let nth i = List.nth out i in
  check_contains "ping" {|"ok":true|} (nth 0);
  check_contains "first verify" {|"cache":"miss"|} (nth 1);
  check_contains "first verify" {|"verdict":"proved"|} (nth 1);
  check_contains "drain" {|"op":"drain"|} (nth 2);
  check_contains "duplicate verify" {|"cache":"hit"|} (nth 3);
  check_contains "bad json" {|"error":"bad-json"|} (nth 4);
  check_contains "missing netlist" {|"error":"bad-request"|} (nth 5);
  check_contains "violated" {|"verdict":"violated"|} (nth 6);
  check_contains "shutdown" {|"op":"shutdown"|} (nth 7);
  (* the same corpus, any --jobs: byte-identical output *)
  let _, out2 = run_lines { Server.default_config with Server.jobs = 4 } lines in
  Helpers.check_bool "jobs-independent output" true
    (List.equal String.equal out out2)

let test_session_coalesce_adjacent_duplicates () =
  (* two identical verifies with no drain between: whether the second
     coalesces onto the in-flight leader or hits the by-then-populated
     cache, the answer must read as a hit *)
  let lines = [ inline_verify ~id:"a" (); inline_verify ~id:"b" () ] in
  let ending, out = run_lines Server.default_config lines in
  Helpers.check_bool "eof ends the session" true (ending = Server.Eof);
  Helpers.check_int "both answered" 2 (List.length out);
  check_contains "leader" {|"cache":"miss"|} (List.nth out 0);
  check_contains "duplicate" {|"cache":"hit"|} (List.nth out 1)

let test_session_stall_and_shed () =
  let cfg =
    { Server.default_config with Server.jobs = 1; queue_limit = Some 1 }
  in
  let shed_before = counter "serve.shed" in
  let lines =
    [
      {|{"id":"st","op":"stall"}|};
      inline_verify ~id:"q1" ();
      (* a DIFFERENT problem: an identical one would coalesce onto q1
         and never touch the saturated queue *)
      inline_verify ~id:"q2" ~bench:violated_bench ();
      {|{"id":"st2","op":"stall"}|};
      {|{"id":"d","op":"drain"}|};
    ]
  in
  let _, out = run_lines cfg lines in
  Helpers.check_int "all answered" 5 (List.length out);
  check_contains "stall released by drain" {|"op":"stall"|} (List.nth out 0);
  check_contains "queue slot filled" {|"id":"q1"|} (List.nth out 1);
  check_contains "overflow shed" {|"error":"overloaded"|} (List.nth out 2);
  check_contains "retry advice" {|"retry_after_ms"|} (List.nth out 2);
  check_contains "second stall refused" {|all workers already stalled|}
    (List.nth out 3);
  check_contains "drain" {|"op":"drain"|} (List.nth out 4);
  Helpers.check_int "shed counted" (shed_before + 1) (counter "serve.shed");
  (* determinism of the whole saturation drill *)
  let _, out2 = run_lines cfg lines in
  Helpers.check_bool "drill is deterministic" true
    (List.equal String.equal out out2)

let test_session_stall_requires_queue_limit () =
  let _, out = run_lines Server.default_config [ {|{"id":"st","op":"stall"}|} ] in
  check_contains "refused under blocking admission" {|stall requires|}
    (List.nth out 0)

let test_session_poison_supervision () =
  let cfg = { Server.default_config with Server.chaos_seed = Some 5 } in
  let restarts_before = counter "serve.worker.restarts" in
  let lines =
    [
      {|{"id":"po","op":"poison"}|};
      {|{"id":"d","op":"drain"}|};
      inline_verify ~id:"v" ();
    ]
  in
  let ending, out = run_lines cfg lines in
  Helpers.check_bool "eof" true (ending = Server.Eof);
  Helpers.check_int "all answered" 3 (List.length out);
  check_contains "poison acknowledged" {|"op":"poison"|} (List.nth out 0);
  check_contains "verify after the kill still works" {|"verdict":"proved"|}
    (List.nth out 2);
  Helpers.check_bool "restart observed" true
    (counter "serve.worker.restarts" > restarts_before)

let test_session_poison_requires_arming () =
  let _, out = run_lines Server.default_config [ {|{"op":"poison"}|} ] in
  check_contains "refused unarmed" {|"error":"bad-request"|} (List.nth out 0)

let test_session_chaos_never_caches_faults () =
  (* an injected fault's (uncertifiable) result must not poison the
     cache for the followup clean request *)
  let cfg = { Server.default_config with Server.chaos_seed = Some 7 } in
  let cache = fresh_cache () in
  let bench = violated_bench in
  let chaos_line =
    let escaped = String.concat {|\n|} (String.split_on_char '\n' bench) in
    Printf.sprintf
      {|{"id":"c","op":"verify","netlist":"%s","chaos":"flip-to-unsat"}|}
      escaped
  in
  let lines =
    [ chaos_line; {|{"id":"d","op":"drain"}|}; inline_verify ~id:"v" ~bench () ]
  in
  let _, out = run_lines ~cache cfg lines in
  Helpers.check_int "all answered" 3 (List.length out);
  check_contains "fault injection reported" {|"injections":|} (List.nth out 0);
  check_contains "clean request gets the true verdict" {|"verdict":"violated"|}
    (List.nth out 2)

(* ---- live telemetry ---- *)

let with_tmp_files n f =
  let paths =
    List.init n (fun _ -> Filename.temp_file "diambound_serve" ".jsonl")
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
    (fun () -> f paths)

let log_events path =
  Obs.Log.to_stderr ();
  (* close the sink before reading *)
  In_channel.with_open_text path In_channel.input_lines
  |> List.filter_map (fun line ->
         match Obs.Report.parse line with
         | Obs.Report.Obj fields -> (
           match List.assoc_opt "event" fields with
           | Some (Obs.Report.String e) -> Some (e, fields)
           | _ -> None)
         | _ -> None
         | exception Failure _ ->
           Alcotest.failf "unparseable log line: %s" line)

let test_session_metrics_op () =
  let lines =
    [
      inline_verify ~id:"v" ();
      {|{"id":"d","op":"drain"}|};
      {|{"id":"m","op":"metrics"}|};
    ]
  in
  let _, out = run_lines Server.default_config lines in
  Helpers.check_int "all answered" 3 (List.length out);
  let m = List.nth out 2 in
  check_contains "metrics is ok" {|"ok":true|} m;
  (* the embedded exposition carries the declared serve counters and
     the per-request heartbeat series (TYPE headers always present) *)
  check_contains "prometheus text" "# TYPE diambound_" m;
  check_contains "heartbeat series declared" "diambound_heartbeat_conflicts" m;
  check_contains "serve counters exported" "diambound_serve_heartbeat_registered"
    m;
  check_contains "spans exported" "_seconds_total" m

let test_session_watchdog_flight_recorder () =
  (* the chaos stall drill end-to-end: a parked worker never beats, so
     the monitor must flag it, log a warn with its correlation id, and
     dump a flight-recorder snapshot trace-report can read *)
  with_tmp_files 2 @@ function
  | [ flight; log_path ] ->
    Obs.Heartbeat.clear ();
    Obs.Log.set_file log_path;
    Fun.protect ~finally:Obs.Log.reset @@ fun () ->
    (try Sys.remove flight with Sys_error _ -> ());
    let cfg =
      {
        Server.default_config with
        Server.jobs = 1;
        queue_limit = Some 2;
        stall_window_s = Some 0.05;
        flight_path = Some flight;
        metrics_interval_s = Some 0.05;
      }
    in
    let stalls_before = counter "watchdog.stalls" in
    let dumps_before = counter "watchdog.dumps" in
    let step = ref 0 in
    let input () =
      incr step;
      match !step with
      | 1 -> Some {|{"id":"st","op":"stall"}|}
      | 2 ->
        (* give the 50ms window time to elapse while the worker parks *)
        Unix.sleepf 0.3;
        Some {|{"id":"d","op":"drain"}|}
      | _ -> None
    in
    let out = ref [] in
    let ending =
      Server.run_session cfg ~input ~output:(fun l -> out := l :: !out) ()
    in
    Helpers.check_bool "session ended at eof" true (ending = Server.Eof);
    Helpers.check_int "both requests answered" 2 (List.length !out);
    Helpers.check_bool "stall flagged" true
      (counter "watchdog.stalls" > stalls_before);
    Helpers.check_bool "flight recorded" true
      (counter "watchdog.dumps" > dumps_before);
    (* the warn line carries the parked request's correlation id *)
    let events = log_events log_path in
    let stall_warns =
      List.filter (fun (e, _) -> e = "watchdog.stall") events
    in
    Helpers.check_bool "watchdog warn logged" true (stall_warns <> []);
    List.iter
      (fun (_, fields) ->
        Helpers.check_bool "warn level" true
          (List.assoc_opt "level" fields = Some (Obs.Report.String "warn"));
        Helpers.check_bool "correlated" true
          (List.assoc_opt "corr" fields = Some (Obs.Report.String "req-0"));
        Helpers.check_bool "phase recorded" true
          (List.assoc_opt "phase" fields
          = Some (Obs.Report.String "stall.parked")))
      stall_warns;
    Helpers.check_bool "periodic metrics emitted" true
      (List.exists (fun (e, _) -> e = "metrics") events);
    (* the dump parses as a trace and names the stalled request *)
    let dumped = Obs.Trace.read_file flight in
    Helpers.check_bool "dump is non-empty" true (dumped <> []);
    let corr_of (e : Obs.Trace.event) =
      List.assoc_opt "corr" e.Obs.Trace.args
    in
    Helpers.check_bool "stalled request in the dump" true
      (List.exists
         (fun (e : Obs.Trace.event) ->
           e.Obs.Trace.name = "flight.request"
           && corr_of e = Some (Obs.Trace.String "req-0")
           && List.assoc_opt "stalled" e.Obs.Trace.args
              = Some (Obs.Trace.Bool true))
         dumped);
    Helpers.check_bool "pool state in the dump" true
      (List.exists
         (fun (e : Obs.Trace.event) -> e.Obs.Trace.name = "flight.state")
         dumped);
    (* and trace-report renders it (the per-request table shows req-0) *)
    let report = Format.asprintf "%a" (Obs.Trace_report.pp ~top:5) dumped in
    check_contains "report groups by corr" "req-0" report
  | _ -> assert false

let test_session_stdout_is_protocol_only () =
  (* with logging at its noisiest, stdout must still carry exactly the
     protocol responses: every line a JSON object with protocol keys,
     none of the log schema *)
  with_tmp_files 1 @@ function
  | [ log_path ] ->
    Obs.Log.set_file log_path;
    Obs.Log.set_level Obs.Log.Debug;
    Fun.protect ~finally:Obs.Log.reset @@ fun () ->
    let lines =
      [
        {|{"id":"p","op":"ping"}|};
        "garbage line";
        inline_verify ~id:"v" ();
        {|{"id":"m","op":"metrics"}|};
      ]
    in
    let _, out = run_lines Server.default_config lines in
    Helpers.check_int "one response per request" 4 (List.length out);
    List.iter
      (fun line ->
        match Obs.Report.parse line with
        | Obs.Report.Obj fields ->
          Helpers.check_bool "response, not a log record" true
            (List.assoc_opt "level" fields = None
            && List.assoc_opt "ts" fields = None)
        | _ -> Alcotest.failf "non-object on stdout: %s" line
        | exception Failure _ ->
          Alcotest.failf "non-JSON on stdout: %s" line)
      out;
    (* the noise went to the sink: at least the bad-request warn *)
    let events = log_events log_path in
    Helpers.check_bool "parse error logged" true
      (List.exists (fun (e, _) -> e = "serve.bad_request") events)
  | _ -> assert false

let test_session_logging_does_not_change_bytes () =
  (* the same corpus with logging off and at debug: byte-identical
     responses (metrics excluded — its text is time-dependent) *)
  let lines =
    [
      inline_verify ~id:"a" ();
      "garbage";
      {|{"id":"d","op":"drain"}|};
      inline_verify ~id:"b" ~bench:violated_bench ();
    ]
  in
  let quiet = run_lines Server.default_config lines in
  with_tmp_files 1 @@ function
  | [ log_path ] ->
    Obs.Log.set_file log_path;
    Obs.Log.set_level Obs.Log.Debug;
    Fun.protect ~finally:Obs.Log.reset @@ fun () ->
    let noisy =
      run_lines { Server.default_config with Server.jobs = 2 } lines
    in
    Helpers.check_bool "logging & jobs leave the bytes alone" true
      (snd quiet = snd noisy)
  | _ -> assert false

let test_session_eof_releases_stalls () =
  (* EOF is an implicit drain: a parked worker must be released and
     answered, not joined forever *)
  let cfg =
    { Server.default_config with Server.jobs = 1; queue_limit = Some 2 }
  in
  let ending, out = run_lines cfg [ {|{"id":"st","op":"stall"}|} ] in
  Helpers.check_bool "eof" true (ending = Server.Eof);
  Helpers.check_int "stall answered at eof" 1 (List.length out);
  check_contains "ok" {|"ok":true|} (List.nth out 0)

let suite =
  [
    Alcotest.test_case "request roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "request defaults" `Quick test_parse_defaults;
    Alcotest.test_case "request error taxonomy" `Quick test_parse_errors;
    Alcotest.test_case "coalesce key" `Quick test_coalesce_key;
    Alcotest.test_case "bcache LRU eviction" `Quick test_bcache_lru_eviction;
    Alcotest.test_case "bcache refuses oversized entries" `Quick
      test_bcache_oversize_refused;
    Alcotest.test_case "bcache purge" `Quick test_bcache_purge;
    Alcotest.test_case "bcache replacement re-accounts bytes" `Quick
      test_bcache_replace_updates_bytes;
    Alcotest.test_case "exec barrier" `Quick test_exec_barrier;
    Alcotest.test_case "exec budget degrades to unknown" `Quick
      test_exec_budget_degrades;
    Alcotest.test_case "exec cache hit" `Quick test_exec_cache_hit;
    Alcotest.test_case "exec uncertified results are not cached" `Quick
      test_exec_uncertified_not_cached;
    Alcotest.test_case "poisoned cache hit purged by replay" `Quick
      test_exec_poisoned_hit_purged;
    Alcotest.test_case "session: mixed corpus, jobs-independent" `Quick
      test_session_mixed;
    Alcotest.test_case "session: adjacent duplicates read as hits" `Quick
      test_session_coalesce_adjacent_duplicates;
    Alcotest.test_case "session: stall saturates, overflow sheds" `Quick
      test_session_stall_and_shed;
    Alcotest.test_case "session: stall needs --queue-limit" `Quick
      test_session_stall_requires_queue_limit;
    Alcotest.test_case "session: poison is supervised" `Quick
      test_session_poison_supervision;
    Alcotest.test_case "session: poison needs arming" `Quick
      test_session_poison_requires_arming;
    Alcotest.test_case "session: chaos cannot poison the cache" `Quick
      test_session_chaos_never_caches_faults;
    Alcotest.test_case "session: eof releases stalled workers" `Quick
      test_session_eof_releases_stalls;
    Alcotest.test_case "session: metrics op renders prometheus" `Quick
      test_session_metrics_op;
    Alcotest.test_case "session: watchdog records stalled flights" `Quick
      test_session_watchdog_flight_recorder;
    Alcotest.test_case "session: stdout carries protocol only" `Quick
      test_session_stdout_is_protocol_only;
    Alcotest.test_case "session: logging leaves response bytes alone" `Quick
      test_session_logging_does_not_change_bytes;
  ]
