(* Inprocessing: the Simplify pass itself, its integration with the
   solver (elimination, reintroduction, model reconstruction, clause
   tiers), proof soundness of simplified runs, and fault injection
   under inprocessing. *)

module Solver = Sat.Solver
module Simplify = Sat.Simplify
module Cnf = Sat.Cnf
module Proof = Sat.Proof
module Drup = Sat.Drup
module Chaos = Sat.Chaos

let no_log _ = ()

let ok_or_fail what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let run_simplify ?config ~nvars clauses =
  Simplify.run ?config ~nvars
    ~frozen:(fun _ -> false)
    ~value:(fun _ -> -1)
    ~log_add:no_log ~log_delete:no_log clauses

(* ----- the pass in isolation ----- *)

let test_subsumption () =
  (* {a,b} subsumes {a,b,c}; no variable elimination so the subsumed
     clause is really gone, not resolved away *)
  let cfg = { Simplify.default with Simplify.var_elim = false } in
  let r =
    run_simplify ~config:cfg ~nvars:3
      [
        [| Solver.pos 0; Solver.pos 1 |];
        [| Solver.pos 0; Solver.pos 1; Solver.pos 2 |];
      ]
  in
  Helpers.check_int "one clause subsumed" 1 r.Simplify.n_subsumed;
  Helpers.check_int "one clause left" 1 (List.length r.Simplify.clauses);
  match r.Simplify.clauses with
  | [ Simplify.Kept 0 ] -> ()
  | _ -> Alcotest.fail "survivor should be the untouched input clause 0"

let test_self_subsumption () =
  (* {a,b} strengthens {~a,b,c} to {b,c} by self-subsuming resolution *)
  let cfg = { Simplify.default with Simplify.var_elim = false } in
  let r =
    run_simplify ~config:cfg ~nvars:3
      [
        [| Solver.pos 0; Solver.pos 1 |];
        [| Solver.neg_of 0; Solver.pos 1; Solver.pos 2 |];
      ]
  in
  Helpers.check_bool "strengthened" true (r.Simplify.n_strengthened >= 1);
  let fresh =
    List.filter_map
      (function Simplify.Fresh l -> Some (Array.to_list l) | Simplify.Kept _ -> None)
      r.Simplify.clauses
  in
  Helpers.check_bool "strengthened clause is {b,c}" true
    (List.mem [ Solver.pos 1; Solver.pos 2 ] fresh)

let test_probing () =
  (* l implies x and y, but x implies ~y: probing must fail l and
     derive the unit ~l from the binary implication graph alone *)
  let cfg =
    { Simplify.default with Simplify.var_elim = false; subsumption = false }
  in
  let r =
    run_simplify ~config:cfg ~nvars:3
      [
        [| Solver.neg_of 0; Solver.pos 1 |];
        [| Solver.neg_of 0; Solver.pos 2 |];
        [| Solver.neg_of 1; Solver.neg_of 2 |];
      ]
  in
  Helpers.check_bool "one failed literal" true (r.Simplify.n_probed >= 1);
  Helpers.check_bool "unit ~l derived" true
    (List.mem (Solver.neg_of 0) r.Simplify.units)

let test_bve_records_elimination () =
  (* Tseitin v = a & b: v is the cheapest variable; elimination must
     store its clauses for reconstruction and produce no contradiction *)
  let r =
    run_simplify ~nvars:3
      [
        [| Solver.neg_of 2; Solver.pos 0 |];
        [| Solver.neg_of 2; Solver.pos 1 |];
        [| Solver.pos 2; Solver.neg_of 0; Solver.neg_of 1 |];
      ]
  in
  Helpers.check_bool "no contradiction" false r.Simplify.contradiction;
  Helpers.check_bool "something eliminated" true (r.Simplify.eliminated <> []);
  let v, stored = List.hd r.Simplify.eliminated in
  Helpers.check_bool "stored clauses mention the variable" true
    (Array.for_all
       (fun lits -> Array.exists (fun l -> l lsr 1 = v) lits)
       stored)

(* ----- solver integration ----- *)

let tseitin_and s =
  (* v = a & b on fresh variables; returns (a, b, v) *)
  let a = Solver.new_var s and b = Solver.new_var s and v = Solver.new_var s in
  Solver.add_clause s [ Solver.neg_of v; Solver.pos a ];
  Solver.add_clause s [ Solver.neg_of v; Solver.pos b ];
  Solver.add_clause s [ Solver.pos v; Solver.neg_of a; Solver.neg_of b ];
  (a, b, v)

let test_model_reconstruction () =
  (* eliminate the Tseitin variable, then demand a full model: the
     eliminated variable's value must be reconstructed consistently *)
  let s = Solver.create () in
  let a, b, v = tseitin_and s in
  Solver.add_clause s [ Solver.pos a ];
  Solver.simplify_now s;
  Helpers.check_bool "sat" true (Solver.solve s = Solver.Sat);
  Helpers.check_bool "v = a & b holds in the model" true
    (Solver.value s (Solver.pos v)
    = (Solver.value s (Solver.pos a) && Solver.value s (Solver.pos b)))

let test_reintroduction_via_add_clause () =
  (* after v is eliminated, a new clause naming v must bring its
     defining clauses back: v & ~a is unsat only through them *)
  let s = Solver.create () in
  let p = Proof.create () in
  Solver.set_proof s p;
  let a, _, v = tseitin_and s in
  Solver.simplify_now s;
  Helpers.check_bool "v eliminated" true (Solver.num_eliminated s >= 1);
  Solver.add_clause s [ Solver.pos v ];
  Solver.add_clause s [ Solver.neg_of a ];
  Helpers.check_bool "unsat through restored clauses" true
    (Solver.solve s = Solver.Unsat);
  ok_or_fail "drup after reintroduction" (Drup.check (Proof.events p))

let test_reintroduction_via_assumptions () =
  let s = Solver.create () in
  let a, b, v = tseitin_and s in
  Solver.simplify_now s;
  Helpers.check_bool "sat under v" true
    (Solver.solve ~assumptions:[ Solver.pos v ] s = Solver.Sat);
  Helpers.check_bool "a and b forced by v" true
    (Solver.value s (Solver.pos a) && Solver.value s (Solver.pos b));
  Helpers.check_bool "unsat under v & ~a" true
    (Solver.solve ~assumptions:[ Solver.pos v; Solver.neg_of a ] s
    = Solver.Unsat)

let php s pigeons holes =
  let var =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Solver.pos var.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s
          [ Solver.neg_of var.(p1).(h); Solver.neg_of var.(p2).(h) ]
      done
    done
  done

let test_drup_from_simplified_run () =
  (* a full unsat run with inprocessing on: every simplification step
     (subsumption deletes, BVE resolvents, probe units) must leave the
     proof checkable *)
  let s = Solver.create () in
  let p = Proof.create () in
  Solver.set_proof s p;
  Solver.set_inprocess s true;
  php s 6 5;
  Helpers.check_bool "php(6,5) unsat" true (Solver.solve s = Solver.Unsat);
  Helpers.check_bool "inprocessing ran" true (Solver.num_simplifies s >= 1);
  Helpers.check_bool "variables eliminated" true (Solver.num_eliminated s >= 1);
  ok_or_fail "drup of simplified run" (Drup.check (Proof.events p))

let test_tiers_never_drop_core () =
  (* LBD tiers under heavy reduce_db pressure: core learnts and locked
     clauses survive by construction, and the watch lists stay clean *)
  let s = Solver.create () in
  php s 7 6;
  Solver.set_max_learnts s 5;
  Helpers.check_bool "php(7,6) unsat" true (Solver.solve s = Solver.Unsat);
  Helpers.check_bool "reduce_db ran" true (Solver.num_reduce_dbs s > 0);
  Helpers.check_int "no core learnt ever deleted" 0
    (Solver.num_core_deleted s);
  Helpers.check_int "no dead watch entries" 0 (Solver.num_dead_watches s);
  Helpers.check_int "watch entries = 2 * live clauses"
    (2 * (Solver.num_clauses s + Solver.num_learnts s))
    (Solver.num_watch_entries s)

(* ----- fault injection still caught under inprocessing ----- *)

let test_chaos_flip_to_unsat_caught () =
  Chaos.with_fault ~seed:1234 Chaos.Flip_to_unsat (fun () ->
      let s = Solver.create () in
      let p = Proof.create () in
      Solver.set_proof s p;
      Solver.set_inprocess s true;
      let a, _, v = tseitin_and s in
      Solver.add_clause s [ Solver.pos a ];
      Solver.simplify_now s;
      (match Solver.solve ~assumptions:[ Solver.pos v ] s with
      | Solver.Unsat -> ()
      | _ -> Alcotest.fail "fault should have reported Unsat");
      Helpers.check_bool "fault fired" true (Chaos.injections () > 0);
      (* the lie has no refutation, simplified clause set or not *)
      Helpers.check_bool "drup rejects flipped unsat" true
        (Result.is_error
           (Drup.check ~goals:[ [ Solver.pos v ] ] (Proof.events p))))

let test_chaos_flip_to_sat_caught () =
  Chaos.with_fault ~seed:1234 Chaos.Flip_to_sat (fun () ->
      let s = Solver.create () in
      Solver.set_inprocess s true;
      php s 4 3;
      (match Solver.solve s with
      | Solver.Sat -> ()
      | _ -> Alcotest.fail "fault should have reported Sat");
      Helpers.check_bool "fault fired" true (Chaos.injections () > 0);
      Helpers.check_bool "check_model rejects garbage model" true
        (Result.is_error (Solver.check_model s)))

(* ----- verdict equivalence, inprocessing on vs off ----- *)

let random_cnf seed =
  let rng = Workload.Rng.create seed in
  let nv = 1 + Workload.Rng.int rng 10 in
  let nc = 1 + Workload.Rng.int rng 35 in
  let clauses =
    List.init nc (fun _ ->
        let len = 1 + Workload.Rng.int rng 4 in
        List.init len (fun _ ->
            let v = Workload.Rng.int rng nv in
            if Workload.Rng.bool rng then Solver.pos v else Solver.neg_of v))
  in
  { Cnf.num_vars = nv; clauses }

let prop_verdict_equivalence =
  Helpers.qtest ~count:300 "inprocessed solver agrees with exhaustive search"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let cnf = random_cnf seed in
      let s = Solver.create () in
      Solver.set_inprocess s true;
      Cnf.load s cnf;
      (* force a pass even when the conflict schedule would skip it *)
      Solver.simplify_now s;
      match (Solver.solve s, Cnf.brute_force cnf) with
      | Solver.Sat, Some _ -> Cnf.eval (Solver.model s) cnf
      | Solver.Unsat, None -> true
      | Solver.Sat, None | Solver.Unsat, Some _ -> false
      | Solver.Unknown, _ -> false)

let prop_assumptions_hit_eliminated =
  Helpers.qtest ~count:200
    "assumptions naming eliminated variables stay correct"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Workload.Rng.create (seed + 23) in
      let cnf = random_cnf seed in
      let s = Solver.create () in
      Solver.set_inprocess s true;
      Cnf.load s cnf;
      Solver.simplify_now s;
      (* unfrozen assumptions: some will name just-eliminated vars *)
      let assumptions =
        List.init
          (1 + Workload.Rng.int rng 3)
          (fun _ ->
            let v = Workload.Rng.int rng cnf.Cnf.num_vars in
            if Workload.Rng.bool rng then Solver.pos v else Solver.neg_of v)
      in
      let strengthened =
        {
          cnf with
          Cnf.clauses = List.map (fun a -> [ a ]) assumptions @ cnf.Cnf.clauses;
        }
      in
      match (Solver.solve ~assumptions s, Cnf.brute_force strengthened) with
      | Solver.Sat, Some _ -> Cnf.eval (Solver.model s) strengthened
      | Solver.Unsat, None -> true
      | Solver.Sat, None | Solver.Unsat, Some _ -> false
      | Solver.Unknown, _ -> false)

(* BMC over structured random designs: the end-to-end answer must not
   depend on inprocessing.  The default is process-global, so save and
   restore it around each arm. *)
let bmc_with inprocess net depth =
  let saved = Solver.inprocess_default () in
  Solver.set_inprocess_default inprocess;
  Fun.protect ~finally:(fun () -> Solver.set_inprocess_default saved)
  @@ fun () -> Bmc.check net ~target:"t" ~depth

let prop_bmc_corpus_equivalence =
  Helpers.qtest ~count:25 "BMC verdicts agree with inprocessing on and off"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_structured seed in
      match (bmc_with true net 8, bmc_with false net 8) with
      | Bmc.Hit a, Bmc.Hit b -> a.Bmc.depth = b.Bmc.depth
      | Bmc.No_hit a, Bmc.No_hit b -> a = b
      | _ -> false)

let suite =
  [
    Alcotest.test_case "subsumption" `Quick test_subsumption;
    Alcotest.test_case "self-subsuming resolution" `Quick test_self_subsumption;
    Alcotest.test_case "failed-literal probing" `Quick test_probing;
    Alcotest.test_case "bve records elimination" `Quick
      test_bve_records_elimination;
    Alcotest.test_case "model reconstruction" `Quick test_model_reconstruction;
    Alcotest.test_case "reintroduction via add_clause" `Quick
      test_reintroduction_via_add_clause;
    Alcotest.test_case "reintroduction via assumptions" `Quick
      test_reintroduction_via_assumptions;
    Alcotest.test_case "drup from simplified run" `Quick
      test_drup_from_simplified_run;
    Alcotest.test_case "tiers never drop core" `Quick
      test_tiers_never_drop_core;
    Alcotest.test_case "chaos flip-to-unsat caught" `Quick
      test_chaos_flip_to_unsat_caught;
    Alcotest.test_case "chaos flip-to-sat caught" `Quick
      test_chaos_flip_to_sat_caught;
    prop_verdict_equivalence;
    prop_assumptions_hit_eliminated;
    prop_bmc_corpus_equivalence;
  ]
