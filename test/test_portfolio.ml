(* Engine.verify_portfolio: reproducibility against the sequential
   ladder, cooperative cancellation, budget starvation. *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let verdict_key = function
  | Core.Engine.Proved { strategy; depth } ->
    Printf.sprintf "proved:%s:%d" strategy depth
  | Core.Engine.Violated { strategy; cex } ->
    Printf.sprintf "violated:%s:%d" strategy cex.Bmc.depth
  | Core.Engine.Inconclusive { attempts } ->
    "inconclusive:"
    ^ String.concat ";"
        (List.map
           (fun (a : Core.Engine.attempt) -> a.strategy ^ "=" ^ a.reason)
           attempts)

(* the portfolio contract: for every jobs count, verdict, winning
   strategy and (when inconclusive) the stand-down reasons match the
   sequential ladder exactly under an unlimited budget *)
let prop_portfolio_matches_sequential =
  Helpers.qtest ~count:20 "verify_portfolio == verify (jobs 1/2/4)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let net, _ = Helpers.rand_structured seed in
      let seq = Core.Engine.verify net ~target:"t" in
      List.for_all
        (fun jobs ->
          let par = Core.Engine.verify_portfolio ~jobs net ~target:"t" in
          String.equal (verdict_key seq) (verdict_key par))
        [ 1; 2; 4 ])

let test_portfolio_on_shared_pool () =
  (* a caller-owned pool survives a portfolio run — cancellation must
     leave every worker parked, not dead — and joins cleanly after *)
  let pool = Sched.Pool.create ~jobs:2 () in
  Fun.protect
    ~finally:(fun () -> Sched.Pool.shutdown pool)
    (fun () ->
      let net = Net.create () in
      let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:Lit.true_ in
      Net.add_target net "t" c.Workload.Gen.out;
      (* rank 0 concludes immediately, cancelling every other rung *)
      (match Core.Engine.verify_portfolio ~pool ~jobs:2 net ~target:"t" with
      | Core.Engine.Violated { strategy = "bmc-probe"; cex } ->
        Helpers.check_int "hit at 3" 3 cex.Bmc.depth
      | v ->
        Alcotest.fail
          (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v));
      (* the workers are still alive and draining jobs *)
      let ys = Sched.Pool.map pool (fun x -> x * 2) [ 1; 2; 3 ] in
      Helpers.check_bool "pool usable after portfolio" true
        (ys = [ 2; 4; 6 ]))

let test_cancelled_ranks_record_budget_reason () =
  (* an already-expired budget starves every racing strategy: each one
     must still record its budget_reason attempt — no rung may vanish
     without a trace *)
  let net, _ = Helpers.rand_structured 42 in
  let budget = Obs.Budget.create ~timeout_s:0.0 () in
  ignore (Obs.Budget.expired budget);
  match Core.Engine.verify_portfolio ~budget ~jobs:2 net ~target:"t" with
  | Core.Engine.Inconclusive { attempts } ->
    Helpers.check_int "all seven rungs accounted for" 7 (List.length attempts);
    List.iter
      (fun (a : Core.Engine.attempt) ->
        Helpers.check Alcotest.string "reason" Core.Engine.budget_reason
          a.reason)
      attempts
  | v ->
    Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v)

let test_budget_cancel_token_stops_strategies () =
  (* a pre-tripped cancellation token behaves exactly like an expired
     deadline: inconclusive, every attempt budget-starved *)
  let cancel = Atomic.make true in
  let net, _ = Helpers.rand_structured 7 in
  let budget = Obs.Budget.with_cancel (Obs.Budget.create ()) cancel in
  match Core.Engine.verify ~budget net ~target:"t" with
  | Core.Engine.Inconclusive { attempts } ->
    List.iter
      (fun (a : Core.Engine.attempt) ->
        Helpers.check Alcotest.string "reason" Core.Engine.budget_reason
          a.reason)
      attempts
  | v ->
    Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v)

let test_proof_sink_gets_winner_only () =
  (* certifying portfolio: the sink replays only the winning
     strategy's proofs, once, after selection *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:4 ~data:a in
  Net.add_target net "t"
    (Net.add_and net p.Workload.Gen.out (Lit.neg p.Workload.Gen.out));
  let proofs = ref 0 in
  let sink _ = incr proofs in
  (match
     Core.Engine.verify_portfolio ~certify:true ~proof_sink:sink ~jobs:2 net
       ~target:"t"
   with
  | Core.Engine.Proved _ -> ()
  | v ->
    Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v));
  (* the sequential ladder sinks exactly one proof for this design
     (see test_certify); the portfolio must replay exactly the same *)
  Helpers.check_int "winner's proof replayed once" 1 !proofs

let suite =
  [
    prop_portfolio_matches_sequential;
    Alcotest.test_case "portfolio on a shared pool" `Quick
      test_portfolio_on_shared_pool;
    Alcotest.test_case "starved ranks record budget_reason" `Quick
      test_cancelled_ranks_record_budget_reason;
    Alcotest.test_case "cancel token stops the ladder" `Quick
      test_budget_cancel_token_stops_strategies;
    Alcotest.test_case "proof sink sees only the winner" `Quick
      test_proof_sink_gets_winner_only;
  ]
