(* Campaign layer: corpus walk/tallies/exit codes, the differential
   oracle matrix, the structural shrinker, fuzz determinism, and the
   end-to-end chaos drill (every Sat.Chaos fault class must be found
   by the campaign and shrunk to a small repro). *)

module Net = Netlist.Net
module Corpus = Campaign.Corpus
module Oracle = Campaign.Oracle
module Hunt = Campaign.Hunt
module Fuzz = Workload.Fuzz
module Shrink = Workload.Shrink

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "diambound_%s_%d_%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Sys.mkdir dir 0o755;
  dir

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* A corpus with every outcome class: proved, violated, malformed,
   an .aag problem, a nested subdirectory, and a non-problem file
   that the walk must skip. *)
let make_corpus () =
  let dir = fresh_dir "corpus" in
  write_file
    (Filename.concat dir "a_proved.bench")
    "INPUT(x)\nnx = NOT(x)\nt = AND(x, nx)\nOUTPUT(t)\n";
  write_file (Filename.concat dir "b_violated.bench") "INPUT(x)\nOUTPUT(x)\n";
  write_file (Filename.concat dir "c_bad.bench") "this is not a netlist\n";
  write_file (Filename.concat dir "d.aag") "aag 1 1 0 1 0\n2\n2\n";
  write_file (Filename.concat dir "notes.txt") "not a problem\n";
  Sys.mkdir (Filename.concat dir "sub") 0o755;
  write_file
    (Filename.concat dir "sub/e_proved.bench")
    "INPUT(y)\nny = NOT(y)\nt = AND(y, ny)\nOUTPUT(t)\n";
  dir

let test_walk () =
  let dir = make_corpus () in
  let paths = Corpus.walk dir in
  Helpers.check_int "walk finds the problems (not notes.txt)" 5
    (List.length paths);
  Helpers.check_bool "walk is sorted" true
    (paths = List.sort String.compare paths);
  let names = List.map Filename.basename paths in
  Helpers.check_bool "nested problems included" true
    (List.mem "e_proved.bench" names)

let test_corpus_tallies_and_exit () =
  let dir = make_corpus () in
  let s = Corpus.run (Corpus.walk dir) in
  Helpers.check_int "proved" 2 s.Corpus.proved;
  Helpers.check_int "violated" 2 s.Corpus.violated;
  Helpers.check_int "malformed" 1 s.Corpus.malformed;
  Helpers.check_int "crashed" 0 s.Corpus.crashed;
  Helpers.check_int "a finding exits 1" 1 (Corpus.exit_code s);
  (* the malformed outcome carries the parse position *)
  let bad =
    List.find
      (fun i -> Filename.basename i.Corpus.path = "c_bad.bench")
      s.Corpus.items
  in
  (match bad.Corpus.outcome with
  | Corpus.Malformed { line = Some 1; msg } ->
    Helpers.check_bool "malformed message non-empty" true (msg <> "")
  | o ->
    Alcotest.failf "expected Malformed line 1, got %s" (Corpus.outcome_name o))

let test_corpus_exit_codes () =
  (* all-proved corpus exits 0 *)
  let dir = fresh_dir "ok" in
  write_file
    (Filename.concat dir "p.bench")
    "INPUT(x)\nnx = NOT(x)\nt = AND(x, nx)\nOUTPUT(t)\n";
  let s = Corpus.run (Corpus.walk dir) in
  Helpers.check_int "all-ok exits 0" 0 (Corpus.exit_code s);
  (* under an already-expired budget every problem is a timeout: the
     walk must degrade to exit 3, never conclude or abort *)
  let mk_budget () = Obs.Budget.create ~timeout_s:0. () in
  let s = Corpus.run ~mk_budget (Corpus.walk dir) in
  Helpers.check_int "timeout tally" 1 s.Corpus.timeout;
  Helpers.check_int "inconclusive-only exits 3" 3 (Corpus.exit_code s)

let strip_elapsed (i : Corpus.item) = (i.Corpus.path, i.Corpus.targets, i.Corpus.outcome)

let test_corpus_jobs_deterministic () =
  let dir = make_corpus () in
  let paths = Corpus.walk dir in
  let s1 = Corpus.run ~jobs:1 paths in
  let s2 = Corpus.run ~jobs:2 paths in
  Helpers.check_bool "items identical across --jobs" true
    (List.map strip_elapsed s1.Corpus.items
    = List.map strip_elapsed s2.Corpus.items)

let test_oracle_clean () =
  (* a healthy build reports zero findings across species, and the
     expired-budget cell stays inconclusive *)
  List.iter
    (fun i ->
      let case = Fuzz.case ~seed:3 i in
      List.iter
        (fun (t, _) ->
          let findings, cells = Oracle.run case.Fuzz.net ~target:t in
          (match findings with
          | [] -> ()
          | f :: _ ->
            Alcotest.failf "case %s %s: unexpected %s" case.Fuzz.label t
              (Format.asprintf "%a" Oracle.pp_finding f));
          let expired =
            List.find (fun c -> c.Oracle.cell = "expired-budget") cells
          in
          match expired.Oracle.outcome with
          | Ok (Core.Engine.Inconclusive _) -> ()
          | Ok v ->
            Alcotest.failf "expired budget concluded %s" (Oracle.verdict_brief v)
          | Error e -> Alcotest.failf "expired budget crashed %s" e)
        (Net.targets case.Fuzz.net))
    [ 0; 1; 2; 3; 4; 5 ]

let test_fuzz_deterministic () =
  (* the same (seed, i) always breeds a byte-identical design *)
  List.iter
    (fun i ->
      let a = Fuzz.case ~seed:9 i in
      let b = Fuzz.case ~seed:9 i in
      Helpers.check_bool
        (Printf.sprintf "case %d reproducible" i)
        true
        (String.equal
           (Textio.Netfmt.to_string a.Fuzz.net)
           (Textio.Netfmt.to_string b.Fuzz.net)))
    [ 0; 3; 11 ];
  let different =
    Textio.Netfmt.to_string (Fuzz.case ~seed:9 0).Fuzz.net
    <> Textio.Netfmt.to_string (Fuzz.case ~seed:10 0).Fuzz.net
  in
  Helpers.check_bool "seeds differ" true different

let test_hunt_jobs_deterministic () =
  let strip (c : Hunt.case_report) =
    (c.Hunt.label, c.Hunt.species, c.Hunt.size, c.Hunt.verdicts)
  in
  let r1 = Hunt.run ~jobs:1 ~seed:5 ~count:6 () in
  let r2 = Hunt.run ~jobs:2 ~seed:5 ~count:6 () in
  Helpers.check_int "zero findings" 0 r1.Hunt.findings;
  Helpers.check_bool "reports identical across --jobs" true
    (List.map strip r1.Hunt.cases = List.map strip r2.Hunt.cases)

(* ----- shrinker ----- *)

(* a violated counter target surrounded by junk the shrinker must
   discard: an unrelated memory block and a dead pipeline *)
let shrink_fixture () =
  let net = Net.create () in
  let ins = List.init 6 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let c = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Netlist.Lit.true_ in
  let addr, data, write =
    match ins with
    | a0 :: a1 :: d0 :: d1 :: w :: _ -> ([ a0; a1 ], [ d0; d1 ], w)
    | _ -> assert false
  in
  let m = Workload.Gen.memory net ~name:"m" ~rows:4 ~width:2 ~addr ~data ~write in
  let joined = Net.add_or net c.Workload.Gen.out m.Workload.Gen.out in
  Net.add_target net "t" joined;
  Net.add_output net "t" joined;
  Net.check net;
  net

let violated net =
  match
    Core.Engine.verify ~config:Oracle.config net ~target:"t"
  with
  | Core.Engine.Violated _ -> true
  | _ -> false

let test_shrink_removes_junk () =
  let net = shrink_fixture () in
  Helpers.check_bool "fixture violated" true (violated net);
  let r = Shrink.run ~keep:violated net ~target:"t" in
  Helpers.check_bool
    (Printf.sprintf "shrunk %d -> %d" r.Shrink.original_size r.Shrink.shrunk_size)
    true
    (2 * r.Shrink.shrunk_size <= r.Shrink.original_size);
  Helpers.check_bool "finding survives shrinking" true (violated r.Shrink.net);
  Net.check r.Shrink.net;
  (* deterministic: a second run reproduces the same minimal repro *)
  let r2 = Shrink.run ~keep:violated (shrink_fixture ()) ~target:"t" in
  Helpers.check_bool "shrink deterministic" true
    (String.equal
       (Textio.Bench_io.to_string r.Shrink.net)
       (Textio.Bench_io.to_string r2.Shrink.net))

let test_shrink_never_grows () =
  let net = shrink_fixture () in
  (* a keep that rejects everything: the result is the COI restriction
     at worst, never larger than the original *)
  let r = Shrink.run ~keep:(fun _ -> false) net ~target:"t" in
  Helpers.check_bool "no growth" true
    (r.Shrink.shrunk_size <= r.Shrink.original_size);
  Helpers.check_int "nothing accepted" 0 r.Shrink.accepted

let test_restrict_drops_other_cones () =
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:x in
  let q =
    Workload.Gen.queue net ~name:"q" ~depth:4 ~width:1 ~push:x ~data:[ x ]
  in
  Net.add_target net "t_c" c.Workload.Gen.out;
  Net.add_output net "t_c" c.Workload.Gen.out;
  Net.add_target net "t_q" q.Workload.Gen.out;
  Net.add_output net "t_q" q.Workload.Gen.out;
  let r = Shrink.restrict net ~target:"t_c" in
  Helpers.check_int "counter regs survive" 2 (Net.num_regs r);
  Helpers.check_int "one target left" 1 (List.length (Net.targets r));
  Net.check r

(* ----- the chaos drill ----- *)

let chaos_seed =
  match Sys.getenv_opt "DIAMBOUND_CHAOS_SEED" with
  | Some s -> int_of_string s
  | None -> 1234

(* Injected solver faults must surface as campaign findings, and each
   finding must shrink to a repro no larger than half its breeding
   design; the written repros must replay through the corpus runner
   (parse + run without crashing). *)
let drill fault () =
  let repro_dir = fresh_dir "repros" in
  let report =
    (* conflicts-only budget: deterministic, and keeps the drill fast
       even though the fault defeats every strategy (full ladder per
       cell otherwise) *)
    let mk_budget () = Obs.Budget.create ~conflicts:4_000 () in
    Sat.Chaos.with_fault ~seed:chaos_seed fault (fun () ->
        let r = Hunt.run ~mk_budget ~repro_dir ~seed:chaos_seed ~count:3 () in
        Helpers.check_bool "fault actually fired" true (Sat.Chaos.injections () > 0);
        r)
  in
  Helpers.check_bool
    (Printf.sprintf "%s detected (%d findings)" (Sat.Chaos.fault_name fault)
       report.Hunt.findings)
    true (report.Hunt.findings > 0);
  List.iter
    (fun (c : Hunt.case_report) ->
      List.iter
        (fun ((_ : Oracle.finding), (s : Hunt.shrink_info)) ->
          Helpers.check_bool
            (Printf.sprintf "%s: shrunk %d -> %d (half of breeding design)"
               c.Hunt.label s.Hunt.original_size s.Hunt.shrunk_size)
            true
            (2 * s.Hunt.shrunk_size <= s.Hunt.original_size);
          match s.Hunt.repro with
          | None -> Alcotest.fail "repro not written"
          | Some path ->
            Helpers.check_bool "repro on disk" true (Sys.file_exists path))
        c.Hunt.findings)
    report.Hunt.cases;
  (* repros replay cleanly once the fault is gone: each parses and
     verifies (conclusively or not) without crashing or tallying
     malformed *)
  let s = Corpus.run (Corpus.walk repro_dir) in
  Helpers.check_int "repros parse (no malformed)" 0 s.Corpus.malformed;
  Helpers.check_int "repros run (no crash)" 0 s.Corpus.crashed

let suite =
  [
    Alcotest.test_case "corpus walk" `Quick test_walk;
    Alcotest.test_case "corpus tallies and exit" `Quick
      test_corpus_tallies_and_exit;
    Alcotest.test_case "corpus exit codes" `Quick test_corpus_exit_codes;
    Alcotest.test_case "corpus jobs-deterministic" `Quick
      test_corpus_jobs_deterministic;
    Alcotest.test_case "oracle clean on healthy build" `Quick test_oracle_clean;
    Alcotest.test_case "fuzz deterministic" `Quick test_fuzz_deterministic;
    Alcotest.test_case "hunt jobs-deterministic" `Quick
      test_hunt_jobs_deterministic;
    Alcotest.test_case "shrink removes junk" `Quick test_shrink_removes_junk;
    Alcotest.test_case "shrink never grows" `Quick test_shrink_never_grows;
    Alcotest.test_case "restrict drops other cones" `Quick
      test_restrict_drops_other_cones;
    Alcotest.test_case "chaos drill: flip-to-unsat" `Slow
      (drill Sat.Chaos.Flip_to_unsat);
    Alcotest.test_case "chaos drill: flip-to-sat" `Slow
      (drill Sat.Chaos.Flip_to_sat);
    Alcotest.test_case "chaos drill: corrupt-model" `Slow
      (drill Sat.Chaos.Corrupt_model);
    Alcotest.test_case "chaos drill: drop-proof" `Slow
      (drill Sat.Chaos.Drop_proof);
  ]
