(* Obs.Trace: exporter round trips, span capture, and the offline
   trace-report views. *)

module Trace = Obs.Trace
module Trace_report = Obs.Trace_report
module Rng = Workload.Rng

let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
  at 0

let with_tmp f =
  let path = Filename.temp_file "diambound_trace" ".trace" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let ev ?(args = []) ?(kind = Trace.Span) name ts dur =
  { Trace.name; kind; ts_us = ts; dur_us = dur; args }

(* ----- seed-driven event generation (floats built from ints, so
   both exporters round-trip them exactly) ----- *)

let rand_value rng : Trace.value =
  match Rng.int rng 4 with
  | 0 -> Trace.Int (Rng.int rng 1000 - 500)
  | 1 -> Trace.Float (float_of_int (Rng.int rng 10_000) /. 8.)
  | 2 ->
    Trace.String
      (String.init (Rng.int rng 8) (fun _ ->
           Char.chr (Char.code 'a' + Rng.int rng 26)))
  | _ -> Trace.Bool (Rng.bool rng)

let rand_event rng =
  let kind = if Rng.int rng 4 = 0 then Trace.Instant else Trace.Span in
  let args =
    List.init (Rng.int rng 4) (fun i ->
        (Printf.sprintf "a%d" i, rand_value rng))
  in
  ev
    (Printf.sprintf "e%d" (Rng.int rng 5))
    (float_of_int (Rng.int rng 1_000_000) /. 4.)
    (match kind with
    | Trace.Instant -> 0.
    | Trace.Span -> float_of_int (Rng.int rng 100_000) /. 4.)
    ~kind ~args

let rand_events seed =
  let rng = Rng.create seed in
  List.init (1 + Rng.int rng 20) (fun _ -> rand_event rng)

let roundtrip format events =
  with_tmp (fun path ->
      Trace.start ~format path;
      List.iter Trace.emit events;
      Trace.stop ();
      Trace.read_file path)

let prop_roundtrip format name =
  Helpers.qtest ~count:60 name
    QCheck.(int_bound 1000000)
    (fun seed ->
      let events = rand_events seed in
      roundtrip format events = events)

let prop_chrome_roundtrip = prop_roundtrip Trace.Chrome "chrome roundtrip is exact"
let prop_jsonl_roundtrip = prop_roundtrip Trace.Jsonl "jsonl roundtrip is exact"

(* ----- unit tests ----- *)

let test_format_of_path () =
  Helpers.check_bool "jsonl suffix" true
    (Trace.format_of_path "a/b.jsonl" = Trace.Jsonl);
  Helpers.check_bool "anything else is Chrome" true
    (Trace.format_of_path "trace.json" = Trace.Chrome)

let test_disabled_noop () =
  Trace.stop ();
  Helpers.check_bool "inactive" false (Trace.active ());
  Trace.emit (ev "ghost" 0. 1.);
  Trace.instant "ghost";
  Helpers.check_int "with_span runs the body" 7
    (Trace.with_span "s" (fun () -> 7));
  Helpers.check_int "with_span_args drops the trailing args" 9
    (Trace.with_span_args "s" (fun () -> (9, [ ("k", Trace.Int 1) ])))

let test_span_capture () =
  let events =
    with_tmp (fun path ->
        Trace.start ~format:Trace.Jsonl path;
        Helpers.check_bool "active" true (Trace.active ());
        let v =
          Trace.with_span "outer"
            ~args:[ ("who", Trace.String "test") ]
            (fun () ->
              Trace.with_span "inner" (fun () -> Trace.instant "tick");
              42)
        in
        Helpers.check_int "value through the span" 42 v;
        Trace.stop ();
        Trace.read_file path)
  in
  (* completion order: the instant first, then inner, then outer *)
  match events with
  | [ tick; inner; outer ] ->
    Helpers.check Alcotest.(list string) "names" [ "tick"; "inner"; "outer" ]
      (List.map (fun (e : Trace.event) -> e.Trace.name) events);
    Helpers.check_bool "instant kind" true (tick.Trace.kind = Trace.Instant);
    Helpers.check_bool "outer starts first" true
      (outer.Trace.ts_us <= inner.Trace.ts_us);
    Helpers.check_bool "inner nests in outer" true
      (inner.Trace.ts_us +. inner.Trace.dur_us
      <= outer.Trace.ts_us +. outer.Trace.dur_us +. 1e-3);
    Helpers.check_bool "outer kept its args" true
      (List.assoc "who" outer.Trace.args = Trace.String "test")
  | l -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length l))

let test_exception_annotates_span () =
  let events =
    with_tmp (fun path ->
        Trace.start ~format:Trace.Jsonl path;
        (try Trace.with_span "boom" (fun () -> failwith "kapow")
         with Failure _ -> ());
        Trace.stop ();
        Trace.read_file path)
  in
  match events with
  | [ e ] -> (
    match List.assoc_opt "exception" e.Trace.args with
    | Some (Trace.String msg) ->
      Helpers.check_bool "exception text captured" true (contains msg "kapow")
    | _ -> Alcotest.fail "no exception attribute")
  | _ -> Alcotest.fail "expected exactly the failing span"

let test_stop_truncates_open_spans () =
  (* stop() inside an open span: the span must still be written, marked
     truncated, so a killed run leaves a well-formed trace *)
  let events =
    with_tmp (fun path ->
        Trace.start ~format:Trace.Chrome path;
        Trace.with_span "open" (fun () -> Trace.stop ());
        Trace.read_file path)
  in
  match events with
  | [ e ] ->
    Helpers.check_bool "span named" true (e.Trace.name = "open");
    Helpers.check_bool "marked truncated" true
      (List.assoc_opt "truncated" e.Trace.args = Some (Trace.Bool true))
  | _ -> Alcotest.fail "expected exactly the truncated span"

let test_unwritable_sink_is_nonfatal () =
  Trace.start "/nonexistent-dir/trace.json";
  Helpers.check_bool "tracing stays off" false (Trace.active ());
  Trace.instant "ignored" (* must not raise *)

let test_forest_self_time () =
  let events =
    [
      ev "root" 0. 100.;
      ev "child" 10. 30.;
      ev "child" 50. 20.;
      ev "late-root" 200. 5.;
      ev "blip" 15. 0. ~kind:Trace.Instant;
    ]
  in
  match Trace_report.forest events with
  | [ root; late ] ->
    Helpers.check_int "two children" 2 (List.length root.Trace_report.children);
    Helpers.check_bool "root self = 100 - 30 - 20" true
      (Float.abs (root.Trace_report.self_us -. 50.) < 1e-6);
    Helpers.check_bool "late root is a root" true
      (late.Trace_report.event.Trace.name = "late-root")
  | l -> Alcotest.fail (Printf.sprintf "expected 2 roots, got %d" (List.length l))

let test_depth_table () =
  let depth_ev d dur ~conflicts ~props ts =
    ev "bmc.depth" ts dur
      ~args:
        [
          ("depth", Trace.Int d);
          ("conflicts", Trace.Int conflicts);
          ("propagations", Trace.Int props);
        ]
  in
  let events =
    [
      depth_ev 0 10. ~conflicts:1 ~props:10 0.;
      depth_ev 1 20. ~conflicts:2 ~props:20 10.;
      depth_ev 1 40. ~conflicts:3 ~props:30 30.;
      ev "other" 70. 5.;
    ]
  in
  match Trace_report.depth_table events with
  | [ d0; d1 ] ->
    Helpers.check_int "depth 0" 0 d0.Trace_report.depth;
    Helpers.check_int "depth 0 calls" 1 d0.Trace_report.calls;
    Helpers.check_int "depth 1 calls" 2 d1.Trace_report.calls;
    Helpers.check_bool "depth 1 total" true
      (Float.abs (d1.Trace_report.total_us -. 60.) < 1e-6);
    Helpers.check_bool "depth 1 max" true
      (Float.abs (d1.Trace_report.max_us -. 40.) < 1e-6);
    Helpers.check_int "depth 1 conflicts sum" 5 d1.Trace_report.conflicts;
    Helpers.check_int "depth 1 propagations sum" 50 d1.Trace_report.propagations
  | l -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length l))

let test_multi_domain_capture () =
  (* spans emitted from worker domains land in per-domain rings and
     carry a "domain" argument; flush before the domain parks so stop
     never loses them *)
  let events =
    with_tmp (fun path ->
        Trace.start ~format:Trace.Jsonl path;
        let workers =
          Array.init 2 (fun i ->
              Domain.spawn (fun () ->
                  Trace.with_span
                    (Printf.sprintf "worker%d" i)
                    (fun () -> Trace.instant "beat");
                  Trace.flush ()))
        in
        Array.iter Domain.join workers;
        Trace.with_span "main" (fun () -> ());
        Trace.stop ();
        Trace.read_file path)
  in
  let by_name n =
    List.filter (fun (e : Trace.event) -> e.Trace.name = n) events
  in
  Helpers.check_int "both workers traced" 1 (List.length (by_name "worker0"));
  Helpers.check_int "both workers traced" 1 (List.length (by_name "worker1"));
  Helpers.check_int "main traced" 1 (List.length (by_name "main"));
  let domain_of (e : Trace.event) =
    match List.assoc_opt "domain" e.Trace.args with
    | Some (Trace.Int d) -> d
    | _ -> 0
  in
  List.iter
    (fun n ->
      List.iter
        (fun e ->
          Helpers.check_bool (n ^ " has a nonzero domain tag") true
            (domain_of e <> 0))
        (by_name n))
    [ "worker0"; "worker1" ];
  List.iter
    (fun e -> Helpers.check_int "main stays domain 0" 0 (domain_of e))
    (by_name "main")

let test_corr_attr_attached () =
  (* spans emitted under a correlation context carry the "corr"
     attribute, without any caller plumbing *)
  let events =
    with_tmp (fun path ->
        Trace.start ~format:Trace.Jsonl path;
        Obs.Log.with_corr "req-9" (fun () ->
            Trace.with_span "work" (fun () -> Trace.instant "tick"));
        Trace.with_span "outside" (fun () -> ());
        Trace.stop ();
        Trace.read_file path)
  in
  let corr_of (e : Trace.event) = List.assoc_opt "corr" e.Trace.args in
  List.iter
    (fun (e : Trace.event) ->
      match e.Trace.name with
      | "work" | "tick" ->
        Helpers.check_bool (e.Trace.name ^ " tagged") true
          (corr_of e = Some (Trace.String "req-9"))
      | _ ->
        Helpers.check_bool "untagged outside the context" true
          (corr_of e = None))
    events;
  Helpers.check_int "all three captured" 3 (List.length events)

let test_truncated_jsonl_tail_tolerated () =
  (* a crash mid-line must lose only that line: the complete prefix
     still reads back *)
  let events = [ ev "a" 0. 10.; ev "b" 5. 2. ] in
  let salvaged =
    with_tmp (fun path ->
        Trace.start ~format:Trace.Jsonl path;
        List.iter Trace.emit events;
        Trace.stop ();
        let text = In_channel.with_open_text path In_channel.input_all in
        (* cut the final line mid-object *)
        let cut = String.length text - 12 in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (String.sub text 0 cut));
        Trace.read_file path)
  in
  Helpers.check_int "complete prefix survives" 1 (List.length salvaged);
  Helpers.check_bool "first event intact" true
    ((List.hd salvaged).Trace.name = "a");
  (* a malformed line MID-file (followed by a complete one) is
     corruption, not truncation, and must still fail loudly *)
  with_tmp (fun path ->
      Trace.start ~format:Trace.Jsonl path;
      Trace.emit (ev "tail" 0. 1.);
      Trace.stop ();
      let good = In_channel.with_open_text path In_channel.input_all in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc ("{nope\n" ^ good));
      match Trace.read_file path with
      | _ -> Alcotest.fail "mid-file corruption must still fail"
      | exception Failure _ -> ())

let test_truncated_chrome_salvaged () =
  (* a Chrome array that never got its closing bracket (killed run)
     salvages its complete per-line objects *)
  let events = [ ev "a" 0. 10.; ev "b" 5. 2.; ev "c" 8. 1. ] in
  let salvaged =
    with_tmp (fun path ->
        Trace.start ~format:Trace.Chrome path;
        List.iter Trace.emit events;
        Trace.stop ();
        let text = In_channel.with_open_text path In_channel.input_all in
        let cut = String.length text - 10 in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (String.sub text 0 cut));
        Trace.read_file path)
  in
  Helpers.check_bool "most events recovered" true (List.length salvaged >= 2);
  Helpers.check_bool "prefix order kept" true
    (List.map (fun (e : Trace.event) -> e.Trace.name) salvaged
    = List.filteri (fun i _ -> i < List.length salvaged) [ "a"; "b"; "c" ])

let test_report_empty_trace_graceful () =
  let text = Format.asprintf "%a" (Trace_report.pp ~top:5) [] in
  Helpers.check_bool "clear empty-capture message" true
    (contains text "no events");
  Helpers.check_bool "mentions truncation as a cause" true
    (contains text "truncated")

let test_corr_table () =
  let tag corr e = { e with Trace.args = ("corr", Trace.String corr) :: e.Trace.args } in
  let events =
    [
      tag "req-0" (ev "root" 0. 100.);
      tag "req-0" (ev "child" 10. 40.);
      tag "req-1" (ev "other" 200. 30.);
      ev "untagged" 300. 5.;
    ]
  in
  match Trace_report.corr_table (Trace_report.forest events) with
  | [ r0; r1 ] ->
    Helpers.check Alcotest.string "first corr" "req-0" r0.Trace_report.c_corr;
    Helpers.check_int "req-0 groups both spans" 2 r0.Trace_report.c_spans;
    (* busy time is self time: the child's 40 is not double-counted *)
    Helpers.check_bool "req-0 busy = 100" true
      (Float.abs (r0.Trace_report.c_busy_us -. 100.) < 1e-6);
    Helpers.check Alcotest.string "second corr" "req-1" r1.Trace_report.c_corr;
    Helpers.check_int "req-1 span" 1 r1.Trace_report.c_spans
  | l -> Alcotest.fail (Printf.sprintf "expected 2 rows, got %d" (List.length l))

let test_report_pp_smoke () =
  let events =
    [
      ev "engine.verify" 0. 100.;
      ev "bmc.depth" 5. 60. ~args:[ ("depth", Trace.Int 3) ];
    ]
  in
  let text = Format.asprintf "%a" (Trace_report.pp ~top:5) events in
  Helpers.check_bool "summary line" true (contains text "2 spans");
  Helpers.check_bool "self-time table" true (contains text "engine.verify");
  Helpers.check_bool "critical path" true (contains text "critical path");
  Helpers.check_bool "per-depth table" true (contains text "per-depth BMC cost")

let suite =
  [
    Alcotest.test_case "format of path" `Quick test_format_of_path;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span capture" `Quick test_span_capture;
    Alcotest.test_case "exception annotates span" `Quick
      test_exception_annotates_span;
    Alcotest.test_case "stop truncates open spans" `Quick
      test_stop_truncates_open_spans;
    Alcotest.test_case "unwritable sink is nonfatal" `Quick
      test_unwritable_sink_is_nonfatal;
    Alcotest.test_case "forest self time" `Quick test_forest_self_time;
    Alcotest.test_case "depth table" `Quick test_depth_table;
    Alcotest.test_case "multi-domain capture" `Quick
      test_multi_domain_capture;
    Alcotest.test_case "corr attr attaches under with_corr" `Quick
      test_corr_attr_attached;
    Alcotest.test_case "truncated jsonl tail tolerated" `Quick
      test_truncated_jsonl_tail_tolerated;
    Alcotest.test_case "truncated chrome salvaged" `Quick
      test_truncated_chrome_salvaged;
    Alcotest.test_case "empty trace reports gracefully" `Quick
      test_report_empty_trace_graceful;
    Alcotest.test_case "per-request corr table" `Quick test_corr_table;
    Alcotest.test_case "report pp smoke" `Quick test_report_pp_smoke;
    prop_chrome_roundtrip;
    prop_jsonl_roundtrip;
  ]
