module Stats = Obs.Stats
module Report = Obs.Report
module Net = Netlist.Net
module Lit = Netlist.Lit

(* the registry is process-global; isolate each case *)
let fresh () = Stats.reset ()

let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
  at 0

let test_counters () =
  fresh ();
  Stats.count "t.a" 1;
  Stats.count "t.a" 2;
  Stats.set_gauge "t.b" 7;
  Stats.set_gauge "t.b" 4;
  Stats.max_gauge "t.c" 3;
  Stats.max_gauge "t.c" 9;
  Stats.max_gauge "t.c" 5;
  let snap = Stats.snapshot () in
  let get name = List.assoc name snap.Stats.counters in
  Helpers.check_int "count accumulates" 3 (get "t.a");
  Helpers.check_int "set overwrites" 4 (get "t.b");
  Helpers.check_int "max keeps the max" 9 (get "t.c");
  (* snapshot is sorted by name *)
  let names = List.map fst snap.Stats.counters in
  Helpers.check_bool "counters sorted" true (List.sort compare names = names)

let test_spans () =
  fresh ();
  let v = Stats.time "t.span" (fun () -> 41 + 1) in
  Helpers.check_int "time returns the value" 42 v;
  ignore (Stats.time "t.span" (fun () -> ()));
  (* exceptions still record the span *)
  (try Stats.time "t.span" (fun () -> failwith "boom") with Failure _ -> ());
  let snap = Stats.snapshot () in
  let sp = List.assoc "t.span" snap.Stats.spans in
  Helpers.check_int "three calls recorded" 3 sp.Stats.calls;
  Helpers.check_bool "total >= max" true (sp.Stats.total_s >= sp.Stats.max_s);
  Helpers.check_bool "non-negative" true (sp.Stats.total_s >= 0.)

let test_reset () =
  fresh ();
  Stats.count "t.x" 5;
  ignore (Stats.time "t.y" (fun () -> ()));
  Stats.reset ();
  let snap = Stats.snapshot () in
  Helpers.check_int "counter zeroed, still registered" 0
    (List.assoc "t.x" snap.Stats.counters);
  Helpers.check_int "span zeroed, still registered" 0
    (List.assoc "t.y" snap.Stats.spans).Stats.calls

let test_json_roundtrip () =
  fresh ();
  Stats.count "t.n" 12;
  Stats.set_gauge "t.g" 0;
  ignore (Stats.time "t.s" (fun () -> ()));
  let snap = Stats.snapshot () in
  let json = Report.json_of_snapshot snap in
  let text = Report.to_string json in
  let back = Report.snapshot_of_json (Report.parse text) in
  Helpers.check_bool "counters survive the round trip" true
    (back.Stats.counters = snap.Stats.counters);
  Helpers.check_bool "spans survive the round trip" true
    (back.Stats.spans = snap.Stats.spans)

let test_json_escapes () =
  let json =
    Report.Obj
      [
        ("quote\"back\\slash", Report.String "tab\t nl\n");
        ("nums", Report.List [ Report.Int (-3); Report.Float 0.125; Report.Null ]);
        ("flag", Report.Bool true);
      ]
  in
  let text = Report.to_string json in
  Helpers.check_bool "escaped round trip" true (Report.parse text = json)

let test_nonfinite_floats () =
  (* regression: "%.17g" used to print nan/inf literally, producing
     invalid JSON that no parser (including ours) would read back *)
  let json =
    Report.Obj
      [
        ("a", Report.Float Float.nan);
        ("b", Report.Float Float.infinity);
        ("c", Report.Float Float.neg_infinity);
        ("d", Report.Float 1.5);
      ]
  in
  let text = Report.to_string json in
  Helpers.check_bool "no bare nan" false (contains text "nan");
  Helpers.check_bool "no bare inf" false (contains text "inf");
  (* it parses back, with non-finite values as null *)
  match Report.parse text with
  | Report.Obj fields ->
    Helpers.check_bool "nan emitted as null" true
      (List.assoc "a" fields = Report.Null);
    Helpers.check_bool "inf emitted as null" true
      (List.assoc "b" fields = Report.Null);
    Helpers.check_bool "-inf emitted as null" true
      (List.assoc "c" fields = Report.Null);
    Helpers.check_bool "finite float intact" true
      (List.assoc "d" fields = Report.Float 1.5)
  | _ -> Alcotest.fail "expected an object"

let test_nonfinite_span_roundtrips () =
  (* a snapshot carrying a non-finite span total must still produce
     parseable JSON and survive the snapshot round trip *)
  fresh ();
  Stats.add_span "t.bad" Float.nan;
  let snap = Stats.snapshot () in
  let text = Report.to_string (Report.json_of_snapshot snap) in
  let back = Report.snapshot_of_json (Report.parse text) in
  match List.assoc "t.bad" back.Stats.spans with
  | sp -> Helpers.check_bool "nan read back as nan" true (Float.is_nan sp.Stats.total_s)
  | exception Not_found -> Alcotest.fail "span lost"

let test_parse_errors () =
  let bad s =
    match Report.parse s with
    | exception Failure _ -> true
    | _ -> false
  in
  Helpers.check_bool "truncated object" true (bad "{\"a\": 1");
  Helpers.check_bool "bare word" true (bad "nope");
  Helpers.check_bool "trailing garbage" true (bad "{} {}");
  Helpers.check_bool "unterminated string" true (bad "{\"a\": \"x");
  Helpers.check_bool "bad escape" true (bad "{\"a\": \"\\q\"}");
  Helpers.check_bool "truncated unicode escape" true (bad "{\"a\": \"\\u00");
  Helpers.check_bool "truncated list" true (bad "[1, 2");
  Helpers.check_bool "missing colon" true (bad "{\"a\" 1}");
  Helpers.check_bool "empty input" true (bad "")

let test_parse_oddities () =
  (* not rejected, but the behavior is pinned: duplicate keys are both
     kept and assoc-lookup sees the first; overflowing float literals
     become infinity (re-emitted as null) *)
  (match Report.parse "{\"a\": 1, \"a\": 2}" with
  | Report.Obj fields ->
    Helpers.check_bool "duplicate keys: first wins" true
      (List.assoc "a" fields = Report.Int 1);
    Helpers.check_int "duplicate keys both kept" 2 (List.length fields)
  | _ -> Alcotest.fail "expected an object");
  match Report.parse "{\"big\": 1e999}" with
  | Report.Obj fields ->
    Helpers.check_bool "1e999 parses to infinity" true
      (List.assoc "big" fields = Report.Float Float.infinity)
  | _ -> Alcotest.fail "expected an object"

let test_now_monotonic () =
  (* satellite: Stats.now must never run backwards (the old
     gettimeofday base jumped under NTP), so durations derived from it
     stay non-negative *)
  let prev = ref (Stats.now ()) in
  for _ = 1 to 10_000 do
    let t = Stats.now () in
    if t < !prev then
      Alcotest.fail (Printf.sprintf "clock ran backwards: %g -> %g" !prev t);
    prev := t
  done

let test_add_span_clamps_negative () =
  fresh ();
  Stats.add_span "t.neg" (-0.5);
  let sp = List.assoc "t.neg" (Stats.snapshot ()).Stats.spans in
  Helpers.check_bool "negative duration clamped to zero" true
    (sp.Stats.total_s = 0. && sp.Stats.max_s = 0.);
  Helpers.check_int "call still counted" 1 sp.Stats.calls

let test_engine_populates_stats () =
  (* end-to-end: a verify run flows through every instrumented layer *)
  fresh ();
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r0 = Net.add_reg net ~init:Net.Init0 "r0" in
  let r1 = Net.add_reg net ~init:Net.Init1 "r1" in
  Net.set_next net r0 a;
  Net.set_next net r1 (Lit.neg a);
  Net.add_target net "t" (Net.add_and net r0 r1);
  (match Core.Engine.verify net ~target:"t" with
  | Core.Engine.Proved _ -> ()
  | v ->
    Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v));
  let snap = Stats.snapshot () in
  let counter name = List.assoc name snap.Stats.counters in
  Helpers.check_bool "solver ran" true (counter "sat.solves" > 0);
  Helpers.check_bool "propagations counted" true
    (counter "sat.propagations" > 0);
  Helpers.check_bool "encoding counted" true (counter "encode.vars" > 0);
  Helpers.check_int "verdict counted" 1 (counter "engine.proved");
  let span name = List.assoc name snap.Stats.spans in
  Helpers.check_bool "probe span recorded" true
    ((span "engine.bmc-probe").Stats.calls = 1);
  Helpers.check_bool "probe span timed" true
    ((span "engine.bmc-probe").Stats.total_s >= 0.)

let test_multi_domain_counters () =
  (* counters are atomics and span tables are per-domain: hammering
     from several domains at once must lose no update *)
  fresh ();
  let per_domain = 10_000 in
  let workers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Stats.count "mt.hits" 1
            done;
            Stats.add_span (Printf.sprintf "mt.work.d%d" d) 0.001))
  in
  Array.iter Domain.join workers;
  let snap = Stats.snapshot () in
  Helpers.check_int "no update lost" (4 * per_domain)
    (List.assoc "mt.hits" snap.Stats.counters);
  (* every domain's span table is merged into the snapshot *)
  for d = 0 to 3 do
    let name = Printf.sprintf "mt.work.d%d" d in
    Helpers.check_bool (name ^ " merged") true
      (List.mem_assoc name snap.Stats.spans)
  done

(* satellite: dist reservoirs are shared (mutex-guarded), so the
   folded percentile counters must not depend on WHICH domain recorded
   each sample — scatter the same samples over 4 worker domains and
   demand the exact counters of the single-domain recording *)
let qcheck_dist_domain_independent =
  Helpers.qtest ~count:25 "dist percentiles are domain-independent"
    QCheck.(list_of_size Gen.(int_range 1 64) (int_bound 10_000))
    (fun samples ->
      fresh ();
      List.iter (fun v -> Stats.dist "qc.single" (float_of_int v)) samples;
      let chunks = Array.make 4 [] in
      List.iteri (fun i v -> chunks.(i mod 4) <- v :: chunks.(i mod 4)) samples;
      let workers =
        Array.map
          (fun chunk ->
            Domain.spawn (fun () ->
                List.iter
                  (fun v -> Stats.dist "qc.multi" (float_of_int v))
                  chunk))
          chunks
      in
      Array.iter Domain.join workers;
      let snap = Stats.snapshot () in
      let get name sfx = List.assoc (name ^ sfx) snap.Stats.counters in
      List.for_all
        (fun sfx -> get "qc.single" sfx = get "qc.multi" sfx)
        [ ".count"; ".p50"; ".p90"; ".p99"; ".max" ])

let test_pp_human_smoke () =
  fresh ();
  Stats.count "t.k" 2;
  ignore (Stats.time "t.t" (fun () -> ()));
  let text = Format.asprintf "%a" Report.pp_human (Stats.snapshot ()) in
  Helpers.check_bool "mentions the counter" true (contains text "t.k");
  Helpers.check_bool "mentions the span" true (contains text "t.t")

let suite =
  [
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "spans" `Quick test_spans;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "non-finite floats emit null" `Quick
      test_nonfinite_floats;
    Alcotest.test_case "non-finite span roundtrips" `Quick
      test_nonfinite_span_roundtrips;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse oddities" `Quick test_parse_oddities;
    Alcotest.test_case "now is monotonic" `Quick test_now_monotonic;
    Alcotest.test_case "add_span clamps negatives" `Quick
      test_add_span_clamps_negative;
    Alcotest.test_case "engine populates stats" `Quick
      test_engine_populates_stats;
    Alcotest.test_case "multi-domain counters merge" `Quick
      test_multi_domain_counters;
    qcheck_dist_domain_independent;
    Alcotest.test_case "pp_human smoke" `Quick test_pp_human_smoke;
  ]
