module Net = Netlist.Net
module Lit = Netlist.Lit

(* free-running 3-bit counter with a target at value 5 (101) *)
let counter_design () =
  let net = Net.create () in
  let block = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  match block.Workload.Gen.regs with
  | [ b0; b1; b2 ] ->
    let t = Net.add_and_list net [ b0; Lit.neg b1; b2 ] in
    Net.add_target net "t" t;
    (net, t)
  | _ -> assert false

let test_enlargement_on_counter () =
  let net, _ = counter_design () in
  match Transform.Enlarge.run net ~target:"t" ~k:2 with
  | Error _ -> Alcotest.fail "expected enlargement to run"
  | Ok r ->
    Helpers.check_int "k recorded" 2 r.Transform.Enlarge.k;
    Helpers.check_bool "set not empty" false r.Transform.Enlarge.empty;
    (* the 2-step enlarged target of state 5 is exactly state 3 *)
    let net' = r.Transform.Enlarge.net in
    let name = "t#enl2" in
    (match Bmc.check net' ~target:name ~depth:8 with
    | Bmc.Hit cex -> Helpers.check_int "state 3 reached at time 3" 3 cex.Bmc.depth
    | Bmc.No_hit _ | Bmc.Unknown _ ->
      Alcotest.fail "enlarged target should be reachable")

let test_theorem4_bound () =
  (* d(t') + k covers the earliest hit of the original *)
  let net, t = counter_design () in
  let k = 2 in
  match Transform.Enlarge.run net ~target:"t" ~k with
  | Error _ -> Alcotest.fail "expected enlargement"
  | Ok r ->
    let exact = Option.get (Core.Exact.explore net t) in
    let hit = Option.get exact.Core.Exact.earliest_hit in
    Helpers.check_int "counter hits 5 at time 5" 5 hit;
    let b = Core.Bound.target_named r.Transform.Enlarge.net "t#enl2" in
    let translated =
      (Core.Translate.target_enlargement ~k).Core.Translate.apply
        b.Core.Bound.bound
    in
    Helpers.check_bool "hit within translated bound" true
      (Core.Sat_bound.is_huge translated || hit <= translated - 1)

let test_inductive_simplification () =
  (* enlarging by the exact distance of the only hitting state leaves
     a singleton; enlarging past every reachable distance from the
     target yields states that hit in exactly k steps *)
  let net, _ = counter_design () in
  match Transform.Enlarge.run net ~target:"t" ~k:5 with
  | Error _ -> Alcotest.fail "expected enlargement"
  | Ok r ->
    (* state 0 hits state 5 in exactly 5 steps *)
    Helpers.check_bool "initial state in the 5-step set" false
      r.Transform.Enlarge.empty;
    (match Bmc.check r.Transform.Enlarge.net ~target:"t#enl5" ~depth:0 with
    | Bmc.Hit cex -> Helpers.check_int "hit at time 0" 0 cex.Bmc.depth
    | Bmc.No_hit _ | Bmc.Unknown _ ->
      Alcotest.fail "state 0 should satisfy the enlarged target")

let test_empty_enlargement () =
  (* a target hittable only at time <= 1 has an empty 2-step
     enlargement with inductive simplification only if no state hits
     in exactly 2 fresh steps; use a pipeline fed by constant 0 with
     init 1 *)
  let net = Net.create () in
  let r1 = Net.add_reg net ~init:Net.Init1 "r1" in
  Net.set_next net r1 Lit.false_;
  Net.add_target net "t" r1;
  (* t is hit at time 0 only; pre^1(t) = nothing (no state maps to
     r1 = 1) *)
  match Transform.Enlarge.run net ~target:"t" ~k:1 with
  | Error _ -> Alcotest.fail "expected enlargement"
  | Ok r ->
    Helpers.check_bool "one-step preimage empty" true r.Transform.Enlarge.empty

let test_input_quantification () =
  (* the enlarged target quantifies inputs: a register loaded from an
     input can hit any value in one step from any state *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r = Net.add_reg net ~init:Net.Init0 "r" in
  Net.set_next net r a;
  Net.add_target net "t" r;
  match Transform.Enlarge.run net ~target:"t" ~k:1 with
  | Error _ -> Alcotest.fail "expected enlargement"
  | Ok res ->
    (* pre^1(r=1) with input quantified = all states; minus states
       already hitting (r=1) = states with r=0 *)
    Helpers.check_bool "preimage not empty" false res.Transform.Enlarge.empty;
    let b = Core.Bound.target_named res.Transform.Enlarge.net "t#enl1" in
    Helpers.check_bool "enlarged target bound small" true
      (b.Core.Bound.bound <= 2)

let test_reg_limit () =
  let net = Net.create () in
  let block = Workload.Gen.lfsr net ~name:"l" ~bits:8 in
  Net.add_target net "t" block.Workload.Gen.out;
  let unsuitable = function
    | Error (Transform.Enlarge.Unsuitable _) -> true
    | Error (Transform.Enlarge.Node_limit _) | Ok _ -> false
  in
  Helpers.check_bool "limit respected" true
    (unsuitable (Transform.Enlarge.run ~reg_limit:4 net ~target:"t" ~k:1));
  Helpers.check_bool "unknown target" true
    (unsuitable (Transform.Enlarge.run net ~target:"nope" ~k:1))

let suite =
  [
    Alcotest.test_case "counter enlargement" `Quick test_enlargement_on_counter;
    Alcotest.test_case "theorem 4 bound" `Quick test_theorem4_bound;
    Alcotest.test_case "inductive simplification" `Quick test_inductive_simplification;
    Alcotest.test_case "empty enlargement" `Quick test_empty_enlargement;
    Alcotest.test_case "input quantification" `Quick test_input_quantification;
    Alcotest.test_case "limits" `Quick test_reg_limit;
  ]
