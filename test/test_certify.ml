(* Certification of engine verdicts: the happy paths (every genuine
   verdict certifies, certification never changes a verdict) and the
   checker primitives' own rejection behavior.  The fault-injection
   suite (Test_chaos) covers the unhappy paths end to end. *)

module Net = Netlist.Net
module Lit = Netlist.Lit
module Stats = Obs.Stats
module Engine = Core.Engine
module Certify = Core.Certify
module Translate = Core.Translate
module Sat_bound = Core.Sat_bound

let counter_of snap name = List.assoc name snap.Stats.counters

(* 2-register design with an unreachable conjunction: proved via a
   small structural bound discharged by a real BMC run *)
let proved_net () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r0 = Net.add_reg net ~init:Net.Init0 "r0" in
  let r1 = Net.add_reg net ~init:Net.Init1 "r1" in
  Net.set_next net r0 a;
  Net.set_next net r1 (Lit.neg a);
  Net.add_target net "t" (Net.add_and net r0 r1);
  net

(* 2-bit counter with its all-ones value as target: hit at time 3 *)
let violated_net () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  net

let test_proved_certifies () =
  Stats.reset ();
  let sunk = ref 0 in
  (match
     Engine.verify ~certify:true
       ~proof_sink:(fun p ->
         incr sunk;
         Helpers.check_bool "sunk proof has axioms" true
           (Sat.Proof.num_inputs p > 0))
       (proved_net ()) ~target:"t"
   with
  | Engine.Proved _ -> ()
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Engine.pp_verdict v));
  let snap = Stats.snapshot () in
  Helpers.check_bool "cert_ok bumped" true (counter_of snap "engine.cert_ok" > 0);
  Helpers.check_int "no cert failures" 0 (counter_of snap "engine.cert_fail");
  Helpers.check_int "proof sunk once" 1 !sunk;
  Helpers.check_bool "drup time recorded" true
    (List.mem_assoc "certify.drup" snap.Stats.spans)

let test_violated_certifies () =
  Stats.reset ();
  (match Engine.verify ~certify:true (violated_net ()) ~target:"t" with
  | Engine.Violated { cex; _ } -> Helpers.check_int "hit at 3" 3 cex.Bmc.depth
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Engine.pp_verdict v));
  let snap = Stats.snapshot () in
  Helpers.check_bool "cert_ok bumped" true (counter_of snap "engine.cert_ok" > 0);
  Helpers.check_int "no cert failures" 0 (counter_of snap "engine.cert_fail");
  Helpers.check_bool "replay time recorded" true
    (List.mem_assoc "certify.replay" snap.Stats.spans)

let test_check_cex () =
  let net = violated_net () in
  let tlit = List.assoc "t" (Net.targets net) in
  match Bmc.check net ~target:"t" ~depth:5 with
  | Bmc.Hit cex ->
    (match Certify.check_cex net tlit cex with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "genuine cex rejected: %s" msg);
    (* corrupt the claimed depth: replay must reject it *)
    let bad = { cex with Bmc.depth = cex.Bmc.depth + 1 } in
    Helpers.check_bool "corrupt cex rejected" true
      (Result.is_error (Certify.check_cex net tlit bad))
  | _ -> Alcotest.fail "expected a hit"

let test_check_no_hit () =
  let net = proved_net () in
  let cert = Bmc.new_cert () in
  (match Bmc.check ~cert net ~target:"t" ~depth:3 with
  | Bmc.No_hit 3 -> ()
  | _ -> Alcotest.fail "expected no hit to depth 3");
  (match Certify.check_no_hit ~depth:3 cert with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "genuine certificate rejected: %s" msg);
  (* an under-covering certificate is rejected even though its goals
     all check *)
  Helpers.check_bool "depth mismatch rejected" true
    (Result.is_error (Certify.check_no_hit ~depth:4 cert));
  (* same goals, empty derivation: nothing is refuted *)
  let hollow = { (Bmc.new_cert ()) with Bmc.goals = cert.Bmc.goals } in
  Helpers.check_bool "hollow certificate rejected" true
    (Result.is_error (Certify.check_no_hit ~depth:3 hollow))

let test_check_translation () =
  let translator =
    Translate.compose
      (Translate.compose Translate.trace_equivalence (Translate.retiming ~skew:3))
      (Translate.state_folding ~factor:2)
  in
  let raw = Sat_bound.of_int 5 in
  let claimed = translator.Translate.apply raw in
  Helpers.check_int "t1 then fold then retime" 13 claimed;
  (match
     Certify.check_translation ~raw ~steps:translator.Translate.steps ~claimed
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "genuine translation rejected: %s" msg);
  Helpers.check_bool "off-by-one rejected" true
    (Result.is_error
       (Certify.check_translation ~raw ~steps:translator.Translate.steps
          ~claimed:(claimed + 1)));
  (* saturation must agree with Sat_bound's *)
  (match
     Certify.check_translation ~raw:Sat_bound.huge
       ~steps:[ Translate.T3 2 ]
       ~claimed:(Sat_bound.mul Sat_bound.huge (Sat_bound.of_int 2))
   with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "saturating translation rejected: %s" msg);
  Helpers.check_bool "illegal step parameter rejected" true
    (Result.is_error
       (Certify.check_translation ~raw ~steps:[ Translate.T2 (-1) ]
          ~claimed:(raw - 1)))

let test_check_induction () =
  let net = proved_net () in
  let cert = Core.Induction.new_cert () in
  match Core.Induction.prove ~cert net ~target:"t" with
  | Core.Induction.Proved k -> (
    Helpers.check_bool "base recorded" true (cert.Core.Induction.base <> None);
    Helpers.check_bool "step recorded" true (cert.Core.Induction.step <> None);
    (match Certify.check_induction ~k cert with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "genuine induction rejected: %s" msg);
    (* hollow step: keep the goal literal, empty the derivation *)
    (match cert.Core.Induction.step with
    | Some (_, goal) -> cert.Core.Induction.step <- Some ([], goal)
    | None -> ());
    Helpers.check_bool "hollow step rejected" true
      (Result.is_error (Certify.check_induction ~k cert)))
  | _ -> Alcotest.fail "expected an induction proof"

(* certification is read-only: it must never change a verdict, only
   (on corrupt answers, see Test_chaos) withhold one *)
let prop_certify_preserves_verdicts =
  Helpers.qtest ~count:25 "certification preserves verdicts"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_structured seed in
      let plain = Core.Engine.verify net ~target:"t" in
      let fail0 =
        List.assoc "engine.cert_fail" (Stats.snapshot ()).Stats.counters
      in
      let certified = Core.Engine.verify ~certify:true net ~target:"t" in
      let fail1 =
        List.assoc "engine.cert_fail" (Stats.snapshot ()).Stats.counters
      in
      let same =
        match (plain, certified) with
        | ( Engine.Proved { strategy = s1; depth = d1 },
            Engine.Proved { strategy = s2; depth = d2 } ) ->
          s1 = s2 && d1 = d2
        | ( Engine.Violated { strategy = s1; cex = c1 },
            Engine.Violated { strategy = s2; cex = c2 } ) ->
          s1 = s2 && c1 = c2
        | Engine.Inconclusive _, Engine.Inconclusive _ -> true
        | _ -> false
      in
      same && fail1 = fail0)

let suite =
  [
    Alcotest.test_case "proved verdict certifies" `Quick test_proved_certifies;
    Alcotest.test_case "violated verdict certifies" `Quick
      test_violated_certifies;
    Alcotest.test_case "check_cex" `Quick test_check_cex;
    Alcotest.test_case "check_no_hit" `Quick test_check_no_hit;
    Alcotest.test_case "check_translation" `Quick test_check_translation;
    Alcotest.test_case "check_induction" `Quick test_check_induction;
    prop_certify_preserves_verdicts;
  ]
