(* Obs.Baseline: snapshot diffing, meta compatibility, and the
   regression gate behind `bench --baseline`. *)

module Stats = Obs.Stats
module Report = Obs.Report
module Baseline = Obs.Baseline

let contains text needle =
  let n = String.length needle and m = String.length text in
  let rec at i = i + n <= m && (String.sub text i n = needle || at (i + 1)) in
  at 0

let sp ?(calls = 1) total = { Stats.calls; total_s = total; max_s = total }

let entry ?(meta = []) counters spans = { Baseline.meta; snap = { Stats.counters; spans } }

let meta_v1 =
  Report.
    [
      ("schema", Int 2);
      ("tool", String "bench");
      ("experiments", List [ String "table1" ]);
    ]

let test_self_diff_no_regressions () =
  let e = entry [ ("sat.solves", 10) ] [ ("bench.table1", sp 0.5) ] in
  let d = Baseline.diff ~base:e ~cur:e in
  Helpers.check_int "one counter row" 1 (List.length d.Baseline.counters);
  Helpers.check_int "one span row" 1 (List.length d.Baseline.spans);
  Helpers.check_int "self compare never regresses" 0
    (List.length (Baseline.regressions ~threshold_pct:0. d))

let test_slowdown_detected () =
  let base = entry [] [ ("bench.table1", sp 0.1) ] in
  let cur = entry [] [ ("bench.table1", sp 0.2) ] in
  let d = Baseline.diff ~base ~cur in
  match Baseline.regressions ~threshold_pct:50. d with
  | [ (name, growth) ] ->
    Helpers.check Alcotest.string "regressed span" "bench.table1" name;
    Helpers.check_bool "growth is 100%" true (Float.abs (growth -. 100.) < 1e-6)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 regression, got %d" (List.length l))

let test_threshold_is_strict () =
  let base = entry [] [ ("s", sp 0.1) ] in
  let cur = entry [] [ ("s", sp 0.15) ] in
  let d = Baseline.diff ~base ~cur in
  Helpers.check_int "exactly-at-threshold passes" 0
    (List.length (Baseline.regressions ~threshold_pct:50. d));
  Helpers.check_int "past-threshold fails" 1
    (List.length (Baseline.regressions ~threshold_pct:49. d))

let test_noise_floor () =
  (* a 900% blowup on a sub-millisecond span is noise, not a regression *)
  let base = entry [] [ ("tiny", sp 1e-5) ] in
  let cur = entry [] [ ("tiny", sp 1e-4) ] in
  let d = Baseline.diff ~base ~cur in
  Helpers.check_int "below the floor never counts" 0
    (List.length (Baseline.regressions ~threshold_pct:50. d));
  Helpers.check_int "floor is tunable" 1
    (List.length (Baseline.regressions ~min_total_s:1e-5 ~threshold_pct:50. d))

let test_outer_join () =
  let base = entry [ ("only.base", 1) ] [ ("gone", sp 0.2) ] in
  let cur = entry [ ("only.cur", 2) ] [ ("new", sp 0.3) ] in
  let d = Baseline.diff ~base ~cur in
  let counter name =
    List.find (fun (r : Baseline.counter_row) -> r.Baseline.name = name)
      d.Baseline.counters
  in
  Helpers.check_bool "base-only counter" true
    ((counter "only.base").Baseline.cur_n = None);
  Helpers.check_bool "cur-only counter" true
    ((counter "only.cur").Baseline.base_n = None);
  (* a span that vanished can't regress; a new span has no baseline *)
  Helpers.check_int "no regressions across the join" 0
    (List.length (Baseline.regressions ~threshold_pct:0. d))

let test_compat () =
  let ok = function Ok () -> true | Error _ -> false in
  let base = entry ~meta:meta_v1 [] [] in
  Helpers.check_bool "same meta" true
    (ok (Baseline.compat ~base ~cur:(entry ~meta:meta_v1 [] [])));
  Helpers.check_bool "legacy (no meta) accepted" true
    (ok (Baseline.compat ~base ~cur:(entry [] [])));
  let other_exp =
    Report.
      [
        ("schema", Int 2);
        ("tool", String "bench");
        ("experiments", List [ String "table2" ]);
      ]
  in
  Helpers.check_bool "different experiments refused" false
    (ok (Baseline.compat ~base ~cur:(entry ~meta:other_exp [] [])));
  let other_tool =
    Report.
      [
        ("schema", Int 2);
        ("tool", String "diam");
        ("experiments", List [ String "table1" ]);
      ]
  in
  Helpers.check_bool "different tool refused" false
    (ok (Baseline.compat ~base ~cur:(entry ~meta:other_tool [] [])))

let test_meta_file_roundtrip () =
  let path = Filename.temp_file "diambound_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Stats.reset ();
      Stats.count "t.k" 3;
      ignore (Stats.time "t.s" (fun () -> ()));
      Report.write_file ~meta:meta_v1 path (Stats.snapshot ());
      let e = Baseline.load path in
      Helpers.check_bool "meta survives the file" true (e.Baseline.meta = meta_v1);
      Helpers.check_int "counter survives the file" 3
        (List.assoc "t.k" e.Baseline.snap.Stats.counters);
      (* legacy snapshot without meta still loads *)
      Report.write_file path (Stats.snapshot ());
      let legacy = Baseline.load path in
      Helpers.check_bool "legacy file has empty meta" true
        (legacy.Baseline.meta = []))

let test_load_errors () =
  let fails path =
    match Baseline.load path with
    | exception Failure _ -> true
    | exception Sys_error _ -> true
    | _ -> false
  in
  Helpers.check_bool "missing file" true (fails "/nonexistent/snap.json");
  let path = Filename.temp_file "diambound_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"counters\": {}";
      close_out oc;
      Helpers.check_bool "truncated JSON" true (fails path))

let test_pct () =
  Helpers.check_bool "zero base" true (Baseline.pct ~base:0. ~cur:1. = None);
  Helpers.check_bool "negative base" true (Baseline.pct ~base:(-1.) ~cur:1. = None);
  match Baseline.pct ~base:2. ~cur:3. with
  | Some p -> Helpers.check_bool "+50%" true (Float.abs (p -. 50.) < 1e-9)
  | None -> Alcotest.fail "expected a percentage"

let test_pp_smoke () =
  let base = entry [ ("c", 1) ] [ ("s", sp 0.1) ] in
  let cur = entry [ ("c", 2) ] [ ("s", sp 0.2) ] in
  let text = Format.asprintf "%a" Baseline.pp (Baseline.diff ~base ~cur) in
  Helpers.check_bool "counter row rendered" true (contains text "c");
  Helpers.check_bool "span row rendered" true (contains text "s")

let suite =
  [
    Alcotest.test_case "self diff has no regressions" `Quick
      test_self_diff_no_regressions;
    Alcotest.test_case "slowdown detected" `Quick test_slowdown_detected;
    Alcotest.test_case "threshold is strict" `Quick test_threshold_is_strict;
    Alcotest.test_case "noise floor" `Quick test_noise_floor;
    Alcotest.test_case "outer join" `Quick test_outer_join;
    Alcotest.test_case "meta compatibility" `Quick test_compat;
    Alcotest.test_case "meta file roundtrip" `Quick test_meta_file_roundtrip;
    Alcotest.test_case "load errors" `Quick test_load_errors;
    Alcotest.test_case "pct" `Quick test_pct;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
