module Net = Netlist.Net
module Lit = Netlist.Lit
module Sim = Netlist.Sim

let sample_bench =
  "# sample\n\
   INPUT(a)\n\
   INPUT(b)\n\
   OUTPUT(z)\n\
   g1 = AND(a, b)\n\
   g2 = NOT(g1)\n\
   r = DFF(g2, 1)\n\
   z = OR(r, g1)\n"

let test_parse_basics () =
  let net = Textio.Bench_io.parse sample_bench in
  Helpers.check_int "inputs" 2 (Net.num_inputs net);
  Helpers.check_int "regs" 1 (Net.num_regs net);
  Helpers.check_int "targets from outputs" 1 (List.length (Net.targets net));
  let r = List.find (fun v -> Net.is_reg net v) (Net.regs net) in
  Helpers.check_bool "init preserved" true ((Net.reg_of net r).Net.r_init = Net.Init1)

let test_parse_multi_arity () =
  let net =
    Textio.Bench_io.parse
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z)\nz = NAND(a, b, c)\n"
  in
  (* NAND3 = ~(a & b & c): check by simulation *)
  let z = List.assoc "z" (Net.outputs net) in
  let got = Sim.run net [ [ true; true; true ]; [ true; false; true ] ] z in
  Helpers.check_bool "nand3 semantics" true (got = [ Sim.V0; Sim.V1 ])

let test_parse_forward_reference () =
  let net =
    Textio.Bench_io.parse
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(later, a)\nlater = NOT(b)\n"
  in
  Helpers.check_int "one and" 1 (Net.num_ands net)

let test_parse_sequential_cycle () =
  let net =
    Textio.Bench_io.parse
      "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, a)\n"
  in
  Helpers.check_int "reg" 1 (Net.num_regs net);
  (* toggles whenever a is high *)
  let q = List.assoc "q" (Net.outputs net) in
  let got = Sim.run net [ [ true ]; [ true ]; [ false ] ] q in
  Helpers.check_bool "toggle" true (got = [ Sim.V0; Sim.V1; Sim.V0 ])

(* every malformed input raises Parse_error carrying the 1-based line
   of the offending declaration — the CLI renders it "file:line: msg" *)
let expect_parse_error ~line:expected text =
  match Textio.Bench_io.parse text with
  | exception Textio.Parse_error { line; msg } ->
    Alcotest.(check int) (Printf.sprintf "line of %S" msg) expected line
  | _ -> Alcotest.fail "expected parse failure"

let test_parse_errors () =
  expect_parse_error ~line:1 "z = AND(a)\nOUTPUT(z)\n";
  (* undefined a *)
  expect_parse_error ~line:2 "INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n";
  expect_parse_error ~line:2 "INPUT(a)\nz = NOT(a, a)\nOUTPUT(z)\n";
  expect_parse_error ~line:2 "INPUT(a)\nz = AND(z, a)\nOUTPUT(z)\n"
  (* combinational cycle *)

let test_parse_error_corpus () =
  (* missing '=' *)
  expect_parse_error ~line:2 "INPUT(a)\nz AND(a)\nOUTPUT(z)\n";
  (* malformed right-hand side *)
  expect_parse_error ~line:2 "INPUT(a)\nz = AND a\nOUTPUT(z)\n";
  (* duplicate definition: the second one is blamed *)
  expect_parse_error ~line:3 "INPUT(a)\nz = NOT(a)\nz = BUFF(a)\nOUTPUT(z)\n";
  (* bad DFF initial value *)
  expect_parse_error ~line:2 "INPUT(a)\nq = DFF(a, 2)\nOUTPUT(q)\n";
  (* DFF arity *)
  expect_parse_error ~line:2 "INPUT(a)\nq = DFF(a, 0, 1)\nOUTPUT(q)\n";
  (* LATCH arity and phase *)
  expect_parse_error ~line:2 "INPUT(a)\nq = LATCH(a)\nOUTPUT(q)\n";
  expect_parse_error ~line:2 "INPUT(a)\nq = LATCH(a, x)\nOUTPUT(q)\n";
  (* comments and blank lines keep their line numbers *)
  expect_parse_error ~line:4 "# header\nINPUT(a)\n\nz = FROB(a)\nOUTPUT(z)\n";
  (* an undefined OUTPUT is blamed at the OUTPUT line *)
  expect_parse_error ~line:2 "INPUT(a)\nOUTPUT(ghost)\n"

let test_latch_extension () =
  let net =
    Textio.Bench_io.parse
      "INPUT(a)\nOUTPUT(z)\nm = LATCH(a, 0)\nz = LATCH(m, 1)\n"
  in
  Helpers.check_int "latches" 2 (Net.num_latches net);
  Helpers.check_int "phases" 2 (Net.phases net)

let roundtrip net =
  Textio.Bench_io.parse (Textio.Bench_io.to_string net)

let test_bench_roundtrip_semantics () =
  let net, _ = Helpers.rand_net_with_target 42 ~inputs:3 ~regs:4 ~gates:12 in
  let back = roundtrip net in
  let t1 = List.assoc "t" (Net.targets net) in
  let t2 = List.assoc "t" (Net.targets back) in
  Helpers.check_bool "roundtrip preserves target semantics" true
    (Transform.Equiv.sim_equivalent net t1 back t2)

let prop_netfmt_roundtrip =
  Helpers.qtest ~count:100 "netfmt roundtrip is exact"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:10 in
      let back = Textio.Netfmt.of_string (Textio.Netfmt.to_string net) in
      String.equal (Textio.Netfmt.to_string net) (Textio.Netfmt.to_string back))

let prop_bench_roundtrip_equiv =
  Helpers.qtest ~count:40 "bench roundtrip preserves semantics"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:8 in
      let back = roundtrip net in
      let t1 = List.assoc "t" (Net.targets net) in
      let t2 = List.assoc "t" (Net.targets back) in
      Transform.Equiv.sim_equivalent ~steps:12 net t1 back t2)

(* write→parse→write fixpoint: the first write may rename (the
   uniquifier resolves collisions between declared names and generated
   ones), but the renaming must be stable — writing the parsed netlist
   again reproduces it byte for byte. *)
let bench_fixpoint net =
  let n2 = roundtrip net in
  let s2 = Textio.Bench_io.to_string n2 in
  let s3 = Textio.Bench_io.to_string (Textio.Bench_io.parse s2) in
  String.equal s2 s3

let prop_bench_fixpoint_random =
  Helpers.qtest ~count:60 "bench write fixpoint (random nets)"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:10 in
      bench_fixpoint net)

let prop_bench_fixpoint_fuzz =
  Helpers.qtest ~count:30 "bench write fixpoint (fuzzer designs)"
    QCheck.(int_bound 200)
    (fun i -> bench_fixpoint (Workload.Fuzz.case ~seed:7 i).Workload.Fuzz.net)

(* adversarial declared names: inputs/outputs squatting on the
   writer's own namespaces ("n<i>" gate names, const0/const1) and an
   empty cone (a constant-false target) *)
let test_bench_nasty_names () =
  let net = Net.create () in
  let n1 = Net.add_input net "n1" in
  let n3 = Net.add_input net "n3" in
  (* an input squatting on the writer's constant name: it must be
     renamed on write (the sim check below therefore keeps it out of
     the live cone — stimulus is matched by input name) *)
  let c0 = Net.add_input net "const0" in
  let g = Net.add_and net n1 n3 in
  Net.add_target net "t" g;
  Net.add_output net "t" g;
  (* output aliasing an input under a colliding name *)
  Net.add_output net "n2" n1;
  (* a semantically-dead cone through the renamed input *)
  let dead = Net.add_and net c0 (Lit.neg c0) in
  Net.add_target net "dead" dead;
  Net.add_output net "dead" dead;
  (* entirely empty cone: a constant-false target *)
  Net.add_target net "empty" Lit.false_;
  Net.add_output net "empty" Lit.false_;
  Net.check net;
  let back = roundtrip net in
  Helpers.check_int "inputs survive" 3 (Net.num_inputs back);
  (* every OUTPUT re-parses as a target, so the n2 alias adds one *)
  Helpers.check_int "targets survive" 4 (List.length (Net.targets back));
  let t1 = List.assoc "t" (Net.targets net) in
  let t2 = List.assoc "t" (Net.targets back) in
  Helpers.check_bool "live target semantics" true
    (Transform.Equiv.sim_equivalent net t1 back t2);
  List.iter
    (fun name ->
      Helpers.check_bool (name ^ " target stays false") true
        (Transform.Equiv.sim_equivalent net Lit.false_ back
           (List.assoc name (Net.targets back))))
    [ "dead"; "empty" ];
  Helpers.check_bool "fixpoint" true (bench_fixpoint net)

let test_bench_max_arity_fixpoint () =
  (* wide gates exist only on the parse side (the writer emits 2-ary
     trees): one write normalizes, after which parse/write is stable *)
  let args = String.concat ", " (List.init 8 (fun i -> Printf.sprintf "a%d" i)) in
  let text =
    String.concat "\n"
      (List.init 8 (fun i -> Printf.sprintf "INPUT(a%d)" i)
      @ [ Printf.sprintf "z = NAND(%s)" args; "OUTPUT(z)"; "" ])
  in
  let net = Textio.Bench_io.parse text in
  Helpers.check_bool "fixpoint" true (bench_fixpoint net);
  let back = roundtrip net in
  let z1 = List.assoc "z" (Net.targets net) in
  let z2 = List.assoc "z" (Net.targets back) in
  Helpers.check_bool "nand8 semantics" true
    (Transform.Equiv.sim_equivalent net z1 back z2)

let suite =
  [
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "multi-arity gates" `Quick test_parse_multi_arity;
    Alcotest.test_case "forward references" `Quick test_parse_forward_reference;
    Alcotest.test_case "sequential cycles" `Quick test_parse_sequential_cycle;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "latch extension" `Quick test_latch_extension;
    Alcotest.test_case "bench roundtrip" `Quick test_bench_roundtrip_semantics;
    prop_netfmt_roundtrip;
    prop_bench_roundtrip_equiv;
    prop_bench_fixpoint_random;
    prop_bench_fixpoint_fuzz;
    Alcotest.test_case "nasty declared names" `Quick test_bench_nasty_names;
    Alcotest.test_case "max-arity fixpoint" `Quick test_bench_max_arity_fixpoint;
  ]
