module Net = Netlist.Net
module Lit = Netlist.Lit

let test_probe_finds_shallow_bug () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  match Core.Engine.verify net ~target:"t" with
  | Core.Engine.Violated { strategy = "bmc-probe"; cex } ->
    Helpers.check_int "hit at 3" 3 cex.Bmc.depth
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v)

let test_structural_proof () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let p = Workload.Gen.pipeline net ~name:"p" ~stages:12 ~data:a in
  (* unreachable: stage output and its negation conjoined *)
  Net.add_target net "t" (Net.add_and net p.Workload.Gen.out (Lit.neg p.Workload.Gen.out));
  match Core.Engine.verify net ~target:"t" with
  | Core.Engine.Proved { strategy; _ } ->
    Helpers.check_bool "cheap strategy used" true
      (String.equal strategy "structural-bound")
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v)

let test_ret_gadget_needs_transformations () =
  let net = Net.create () in
  let x = Net.add_input net "x" in
  let y = Net.add_input net "y" in
  let guard = Workload.Gen.ret_guard net ~name:"g" ~x ~y in
  let c = Workload.Gen.counter net ~name:"c" ~bits:8 ~enable:guard in
  Net.add_target net "t" c.Workload.Gen.out;
  match Core.Engine.verify net ~target:"t" with
  | Core.Engine.Proved { strategy; _ } ->
    Helpers.check_bool "transformation pipeline closed it" true
      (String.equal strategy "com-ret-com+bound")
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v)

let test_latch_design () =
  (* unreachable conjunction in a latchified design: proofs go through
     phase abstraction and Theorem 3 *)
  let base = Net.create () in
  let a = Net.add_input base "a" in
  let p = Workload.Gen.pipeline base ~name:"p" ~stages:3 ~data:a in
  Net.add_target base "t"
    (Net.add_and base p.Workload.Gen.out (Lit.neg p.Workload.Gen.out));
  let net = Workload.Gp.latchify base in
  match Core.Engine.verify net ~target:"t" with
  | Core.Engine.Proved _ -> ()
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v)

let test_inconclusive_records_attempts () =
  (* a large FSM with an unreachable-but-hard target defeats every
     strategy within tiny budgets *)
  let net = Net.create () in
  let rng = Workload.Rng.create 3 in
  let ins = List.init 4 (fun i -> Net.add_input net (Printf.sprintf "i%d" i)) in
  let f = Workload.Gen.fsm net rng ~name:"f" ~bits:30 ~inputs:ins in
  let c = Workload.Gen.counter net ~name:"c" ~bits:10 ~enable:f.Workload.Gen.out in
  Net.add_target net "t" c.Workload.Gen.out;
  let config =
    { Core.Engine.default with
      Core.Engine.probe_depth = 2; recurrence_limit = 3; induction_max_k = 1 }
  in
  match Core.Engine.verify ~config net ~target:"t" with
  | Core.Engine.Inconclusive { attempts } ->
    Helpers.check_bool "several strategies tried" true (List.length attempts >= 5)
  | Core.Engine.Proved _ -> Alcotest.fail "budgets too small to prove"
  | Core.Engine.Violated _ -> Alcotest.fail "needs 2^10 steps to hit"

let test_discharge_depth () =
  (* regression: a bound of 0 used to be discharged by a depth -1 BMC
     run ("complete to depth -1"); it must skip BMC entirely *)
  Helpers.check_bool "huge -> no run" true
    (Core.Engine.discharge_depth Core.Sat_bound.huge = None);
  Helpers.check_bool "0 -> no run" true
    (Core.Engine.discharge_depth (Core.Sat_bound.of_int 0) = None);
  Helpers.check_bool "1 -> depth 0" true
    (Core.Engine.discharge_depth (Core.Sat_bound.of_int 1) = Some 0);
  Helpers.check_bool "5 -> depth 4" true
    (Core.Engine.discharge_depth (Core.Sat_bound.of_int 5) = Some 4)

let test_empty_enlargement_at_k0 () =
  (* regression: with enlargement_k = 0 an empty enlargement used to
     discharge via [Bmc.check ~depth:(k - 1)], i.e. depth -1, and
     report "complete to depth -1" *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r1 = Net.add_reg net ~init:Net.Init0 "r1" in
  let r2 = Net.add_reg net ~init:Net.Init0 "r2" in
  Net.set_next net r1 a;
  Net.set_next net r2 (Lit.neg a);
  (* combinationally false, but hidden from two-level strashing:
     (r1 & r2) & (r1 & ~r2) *)
  let t1 = Net.add_and net r1 r2 in
  let t2 = Net.add_and net r1 (Lit.neg r2) in
  Net.add_target net "t" (Net.add_and net t1 t2);
  (* cutoff 1 makes every bound-based strategy stand down (their
     minimum bound is 1), leaving the BDD path to close the target *)
  let config =
    { Core.Engine.default with Core.Engine.enlargement_k = 0; cutoff = 1 }
  in
  match Core.Engine.verify ~config net ~target:"t" with
  | Core.Engine.Proved { strategy; depth } ->
    Helpers.check_bool "proved by the empty enlargement" true
      (String.equal strategy "enlargement-empty");
    Helpers.check_int "depth clamped to 0, not -1" 0 depth
  | v -> Alcotest.fail (Format.asprintf "unexpected: %a" Core.Engine.pp_verdict v)

let test_unknown_target () =
  let net = Net.create () in
  Alcotest.check_raises "unknown" (Invalid_argument "Engine.verify: unknown target zz")
    (fun () -> ignore (Core.Engine.verify net ~target:"zz"))

let prop_agrees_with_exact =
  Helpers.qtest ~count:25 "engine verdicts agree with explicit search"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_structured seed in
      match Core.Engine.verify net ~target:"t" with
      | Core.Engine.Inconclusive _ -> true
      | Core.Engine.Proved _ -> (
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> e.Core.Exact.earliest_hit = None)
      | Core.Engine.Violated { cex; _ } -> (
        Bmc.replay net t cex
        &&
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> (
          match e.Core.Exact.earliest_hit with
          | Some hit -> hit <= cex.Bmc.depth
          | None -> false)))

let suite =
  [
    Alcotest.test_case "probe finds shallow bug" `Quick test_probe_finds_shallow_bug;
    Alcotest.test_case "structural proof" `Quick test_structural_proof;
    Alcotest.test_case "RET gadget strategy" `Quick test_ret_gadget_needs_transformations;
    Alcotest.test_case "latch design" `Quick test_latch_design;
    Alcotest.test_case "inconclusive attempts" `Quick test_inconclusive_records_attempts;
    Alcotest.test_case "discharge depth" `Quick test_discharge_depth;
    Alcotest.test_case "empty enlargement at k=0" `Quick
      test_empty_enlargement_at_k0;
    Alcotest.test_case "unknown target" `Quick test_unknown_target;
    prop_agrees_with_exact;
  ]
