module Solver = Sat.Solver
module Cnf = Sat.Cnf

let random_cnf seed =
  let rng = Workload.Rng.create seed in
  let nv = 1 + Workload.Rng.int rng 10 in
  let nc = 1 + Workload.Rng.int rng 35 in
  let clauses =
    List.init nc (fun _ ->
        let len = 1 + Workload.Rng.int rng 4 in
        List.init len (fun _ ->
            let v = Workload.Rng.int rng nv in
            if Workload.Rng.bool rng then Solver.pos v else Solver.neg_of v))
  in
  { Cnf.num_vars = nv; clauses }

let prop_agrees_with_brute_force =
  Helpers.qtest ~count:300 "solver agrees with exhaustive search"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let cnf = random_cnf seed in
      let s = Solver.create () in
      Cnf.load s cnf;
      match (Solver.solve s, Cnf.brute_force cnf) with
      | Solver.Sat, Some _ -> Cnf.eval (Solver.model s) cnf
      | Solver.Unsat, None -> true
      | Solver.Sat, None | Solver.Unsat, Some _ -> false
      | Solver.Unknown, _ -> false (* no budget given: Unknown impossible *))

let prop_assumptions =
  Helpers.qtest ~count:200 "assumptions behave as temporary units"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Workload.Rng.create (seed + 17) in
      let cnf = random_cnf seed in
      let s = Solver.create () in
      Cnf.load s cnf;
      let assumptions =
        List.init
          (1 + Workload.Rng.int rng 3)
          (fun _ ->
            let v = Workload.Rng.int rng cnf.Cnf.num_vars in
            if Workload.Rng.bool rng then Solver.pos v else Solver.neg_of v)
      in
      let strengthened =
        { cnf with Cnf.clauses = List.map (fun a -> [ a ]) assumptions @ cnf.Cnf.clauses }
      in
      match (Solver.solve ~assumptions s, Cnf.brute_force strengthened) with
      | Solver.Sat, Some _ -> Cnf.eval (Solver.model s) strengthened
      | Solver.Unsat, None -> true
      | Solver.Sat, None | Solver.Unsat, Some _ -> false
      | Solver.Unknown, _ -> false (* no budget given: Unknown impossible *))

let prop_incremental_reuse =
  Helpers.qtest ~count:100 "solver usable across growing clause sets"
    QCheck.(int_bound 1000000)
    (fun seed ->
      (* add clauses in two batches; second solve must account for
         everything *)
      let cnf = random_cnf seed in
      let n = List.length cnf.Cnf.clauses in
      let first = List.filteri (fun i _ -> i < n / 2) cnf.Cnf.clauses in
      let second = List.filteri (fun i _ -> i >= n / 2) cnf.Cnf.clauses in
      let s = Solver.create () in
      Cnf.load s { cnf with Cnf.clauses = first };
      ignore (Solver.solve s);
      List.iter (Solver.add_clause s) second;
      match (Solver.solve s, Cnf.brute_force cnf) with
      | Solver.Sat, Some _ -> Cnf.eval (Solver.model s) cnf
      | Solver.Unsat, None -> true
      | Solver.Sat, None | Solver.Unsat, Some _ -> false
      | Solver.Unknown, _ -> false (* no budget given: Unknown impossible *))

let test_empty_clause () =
  let s = Solver.create () in
  ignore (Solver.new_var s);
  Solver.add_clause s [];
  Helpers.check_bool "empty clause unsat" true (Solver.solve s = Solver.Unsat)

let test_unit_propagation () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a ];
  Solver.add_clause s [ Solver.neg_of a; Solver.pos b ];
  Helpers.check_bool "sat" true (Solver.solve s = Solver.Sat);
  Helpers.check_bool "a forced" true (Solver.value s (Solver.pos a));
  Helpers.check_bool "b forced" true (Solver.value s (Solver.pos b))

let test_tautology_dropped () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a; Solver.neg_of a ];
  Helpers.check_bool "tautology harmless" true (Solver.solve s = Solver.Sat)

let test_conflicting_units () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a ];
  Solver.add_clause s [ Solver.neg_of a ];
  Helpers.check_bool "unsat" true (Solver.solve s = Solver.Unsat);
  (* and permanently so *)
  Helpers.check_bool "still unsat" true (Solver.solve s = Solver.Unsat)

let test_unsat_core_free_after_assumptions () =
  (* assumption-driven Unsat must not poison later solves *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a; Solver.pos b ];
  Helpers.check_bool "unsat under assumptions" true
    (Solver.solve ~assumptions:[ Solver.neg_of a; Solver.neg_of b ] s
    = Solver.Unsat);
  Helpers.check_bool "sat afterwards" true (Solver.solve s = Solver.Sat)

let test_pigeonhole () =
  (* PHP(4,3): 4 pigeons in 3 holes, unsatisfiable; exercises conflict
     analysis, learning and restarts *)
  let s = Solver.create () in
  let var = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Solver.new_var s)) in
  for p = 0 to 3 do
    Solver.add_clause s (List.init 3 (fun h -> Solver.pos var.(p).(h)))
  done;
  for h = 0 to 2 do
    for p1 = 0 to 3 do
      for p2 = p1 + 1 to 3 do
        Solver.add_clause s
          [ Solver.neg_of var.(p1).(h); Solver.neg_of var.(p2).(h) ]
      done
    done
  done;
  Helpers.check_bool "php(4,3) unsat" true (Solver.solve s = Solver.Unsat)

let php s pigeons holes =
  let var =
    Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s))
  in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Solver.pos var.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s
          [ Solver.neg_of var.(p1).(h); Solver.neg_of var.(p2).(h) ]
      done
    done
  done

let test_reduce_db_sweeps_watches () =
  (* regression: reduce_db used to mark learnts deleted without
     purging them from the watch lists, so dead clauses accumulated
     and propagation kept scanning them *)
  let s = Solver.create () in
  php s 5 4;
  Solver.set_max_learnts s 5;
  Helpers.check_bool "php(5,4) unsat" true (Solver.solve s = Solver.Unsat);
  Helpers.check_bool "reduce_db triggered" true (Solver.num_reduce_dbs s > 0);
  Helpers.check_int "no dead watch entries" 0 (Solver.num_dead_watches s);
  (* two-watched invariant: every live clause sits in exactly two
     watch lists (unit learnts are never stored) *)
  Helpers.check_int "watch entries = 2 * live clauses"
    (2 * (Solver.num_clauses s + Solver.num_learnts s))
    (Solver.num_watch_entries s)

let test_max_learnts_grows_geometrically () =
  (* regression: the learnt-clause cap used to stay flat, so long runs
     thrashed reduce_db forever; it must grow (x1.1) at each reduction *)
  let s = Solver.create () in
  php s 7 6;
  Solver.set_max_learnts s 5;
  Helpers.check_bool "php(7,6) unsat" true (Solver.solve s = Solver.Unsat);
  Helpers.check_bool "reduce_db triggered" true (Solver.num_reduce_dbs s > 0);
  Helpers.check_bool "cap grew beyond its initial value" true
    (Solver.max_learnts s > 5);
  (* cap after n reductions is at least 5 * 1.1^n (geometric, not
     additive): floats truncate, so allow one unit of slack per step *)
  let n = Solver.num_reduce_dbs s in
  let expected = 5. *. (1.1 ** float_of_int n) in
  Helpers.check_bool "growth is geometric" true
    (float_of_int (Solver.max_learnts s) >= expected -. float_of_int n)

let test_model_after_unsat_raises () =
  (* regression: value/model used to silently return stale
     phase-saved data after an Unsat result *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a; Solver.pos b ];
  Alcotest.check_raises "value before any solve"
    (Invalid_argument "Solver.value: no model (last solve did not return Sat)")
    (fun () -> ignore (Solver.value s (Solver.pos a)));
  Helpers.check_bool "sat" true (Solver.solve s = Solver.Sat);
  ignore (Solver.value s (Solver.pos a));
  ignore (Solver.model s);
  Helpers.check_bool "unsat under assumptions" true
    (Solver.solve ~assumptions:[ Solver.neg_of a; Solver.neg_of b ] s
    = Solver.Unsat);
  Alcotest.check_raises "value after unsat"
    (Invalid_argument "Solver.value: no model (last solve did not return Sat)")
    (fun () -> ignore (Solver.value s (Solver.pos a)));
  Alcotest.check_raises "model after unsat"
    (Invalid_argument "Solver.model: no model (last solve did not return Sat)")
    (fun () -> ignore (Solver.model s));
  (* a later Sat solve restores access *)
  Helpers.check_bool "sat again" true (Solver.solve s = Solver.Sat);
  ignore (Solver.model s)

let test_dimacs_roundtrip () =
  let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let cnf = Sat.Dimacs.parse text in
  Helpers.check_int "vars" 3 cnf.Cnf.num_vars;
  Helpers.check_int "clauses" 2 (List.length cnf.Cnf.clauses);
  let s = Solver.create () in
  Cnf.load s cnf;
  Helpers.check_bool "sat" true (Solver.solve s = Solver.Sat)

let test_dimacs_errors () =
  Alcotest.check_raises "unterminated clause"
    (Failure "Dimacs.parse: unterminated clause") (fun () ->
      ignore (Sat.Dimacs.parse "p cnf 2 1\n1 2"))

let suite =
  [
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "unit propagation" `Quick test_unit_propagation;
    Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
    Alcotest.test_case "conflicting units" `Quick test_conflicting_units;
    Alcotest.test_case "assumptions reset" `Quick test_unsat_core_free_after_assumptions;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
    Alcotest.test_case "reduce_db sweeps watches" `Quick
      test_reduce_db_sweeps_watches;
    Alcotest.test_case "max_learnts grows geometrically" `Quick
      test_max_learnts_grows_geometrically;
    Alcotest.test_case "model after unsat raises" `Quick
      test_model_after_unsat_raises;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
    prop_agrees_with_brute_force;
    prop_assumptions;
    prop_incremental_reuse;
  ]
