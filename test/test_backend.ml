(* Differential tests for the pluggable solver backends: every
   backend is a sound decision procedure over the same clause set, so
   conclusive answers must agree — with each other and with
   exhaustive search — on random CNF and on the BMC corpus.  Unknowns
   are allowed but must carry the right structured reason: the BDD
   oracle only ever stands down on its node limit, the external
   backend only ever degrades to backend-unavailable (never an
   exception), and chaos faults injected at the backend seam must
   surface as detectable lies, not silent corruption.

   The external-backend round-trip tests drive the in-tree [diam sat]
   subcommand as the external solver (it speaks the SAT-competition
   protocol the backend expects); they skip gracefully when the
   binary has not been built. *)

module Net = Netlist.Net
module Lit = Netlist.Lit
module Cnf = Sat.Cnf
module Chaos = Sat.Chaos

let random_cnf seed =
  let rng = Workload.Rng.create seed in
  let nv = 1 + Workload.Rng.int rng 10 in
  let nc = 1 + Workload.Rng.int rng 35 in
  let clauses =
    List.init nc (fun _ ->
        let len = 1 + Workload.Rng.int rng 4 in
        List.init len (fun _ ->
            let v = Workload.Rng.int rng nv in
            if Workload.Rng.bool rng then Backend.pos v else Backend.neg_of v))
  in
  { Cnf.num_vars = nv; clauses }

(* load a CNF into a backend instance (Cnf.load is pinned to the raw
   CDCL solver type) *)
let load s cnf =
  for _ = 1 to cnf.Cnf.num_vars do
    ignore (Backend.new_var s)
  done;
  List.iter (Backend.add_clause s) cnf.Cnf.clauses

let model_of s cnf =
  Array.init cnf.Cnf.num_vars (fun v -> Backend.value s (Backend.pos v))

(* the diam binary, for external-backend round trips; the test stanza
   declares the dependency, but stay graceful if it is absent *)
let diam_exe =
  let p =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/diam_tool.exe"
  in
  if Sys.file_exists p then Some p else None

let ext_cmd () =
  Option.map (fun p -> Filename.quote p ^ " sat") diam_exe

(* a backend's answer on [cnf] checked against exhaustive search;
   [unknown_ok] validates the stand-down reason *)
let agrees ?(unknown_ok = fun _ -> false) backend cnf =
  let s = Backend.instantiate backend in
  load s cnf;
  match (Backend.solve s, Cnf.brute_force cnf) with
  | Backend.Sat, Some _ -> Cnf.eval (model_of s cnf) cnf
  | Backend.Unsat, None -> true
  | Backend.Sat, None | Backend.Unsat, Some _ -> false
  | Backend.Unknown why, _ -> unknown_ok why

let prop_reference_and_bdd_agree =
  Helpers.qtest ~count:200 "reference and bdd agree with exhaustive search"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let cnf = random_cnf seed in
      (* no budget, default node allowance: Unknown is never acceptable
         on a 10-variable instance *)
      agrees (Backend.reference ()) cnf && agrees (Backend.bdd_oracle ()) cnf)

let prop_ext_agrees =
  Helpers.qtest ~count:30 "external solver round-trip agrees"
    QCheck.(int_bound 1000000)
    (fun seed ->
      match ext_cmd () with
      | None -> true (* diam not built; the stanza dep makes this rare *)
      | Some cmd ->
        agrees (Backend.external_solver ~cmd ()) (random_cnf seed))

let prop_bdd_unknowns_are_node_limit =
  Helpers.qtest ~count:100 "starved bdd oracle stands down on node limit only"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let cnf = random_cnf seed in
      (* a 2-node manager blows up on anything non-trivial; whatever
         still concludes must be correct, and every Unknown must be a
         node-limit stand-down — never budget noise, never a lie *)
      agrees
        ~unknown_ok:Backend.is_node_limit
        (Backend.bdd_oracle ~max_nodes:2 ())
        cnf)

(* ----- BMC corpus: the same outcomes through every backend ----- *)

let bmc_corpus () =
  let mk name depth build =
    let net = Net.create () in
    let lit = build net in
    Net.add_target net "t" lit;
    (name, net, depth)
  in
  [
    (* conclusive hit at depth 15 *)
    mk "counter4" 20 (fun net ->
        (Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:Lit.true_)
          .Workload.Gen.out);
    (* input-gated: hit still at 15, but every depth is a real solve *)
    mk "gated4" 20 (fun net ->
        let en = Net.add_input net "en" in
        (Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:en)
          .Workload.Gen.out);
    (* no hit inside the horizon *)
    mk "counter6" 10 (fun net ->
        (Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:Lit.true_)
          .Workload.Gen.out);
  ]

let outcome_eq a b =
  match (a, b) with
  | Bmc.Hit x, Bmc.Hit y -> x.Bmc.depth = y.Bmc.depth
  | Bmc.No_hit x, Bmc.No_hit y -> x = y
  | _ -> false

let test_bmc_corpus_agreement () =
  let backends =
    [ ("reference", Backend.reference ()); ("bdd", Backend.bdd_oracle ()) ]
    @
    match ext_cmd () with
    | Some cmd -> [ ("ext", Backend.external_solver ~cmd ()) ]
    | None -> []
  in
  List.iter
    (fun (name, net, depth) ->
      let reference =
        Bmc.check ~backend:(Backend.reference ()) net ~target:"t" ~depth
      in
      List.iter
        (fun (bname, b) ->
          match Bmc.check ~backend:b net ~target:"t" ~depth with
          | Bmc.Unknown { why; _ } ->
            (* only the bdd oracle may stand down here, and only on
               its node limit *)
            Helpers.check_bool
              (Printf.sprintf "%s/%s unknown is node-limit" name bname)
              true
              (String.equal bname "bdd" && Backend.is_node_limit why)
          | outcome ->
            Helpers.check_bool
              (Printf.sprintf "%s/%s agrees with reference" name bname)
              true
              (outcome_eq reference outcome))
        backends)
    (bmc_corpus ())

(* ----- external backend: degradation, never a crash ----- *)

let test_ext_missing_binary () =
  let s =
    Backend.instantiate
      (Backend.external_solver ~cmd:"/nonexistent/diambound-ext-solver" ())
  in
  let v = Backend.new_var s in
  Backend.add_clause s [ Backend.pos v ];
  match Backend.solve s with
  | Backend.Unknown why ->
    Helpers.check_bool "structured backend-unavailable reason" true
      (Backend.is_unavailable why)
  | Backend.Sat | Backend.Unsat ->
    Alcotest.fail "missing binary must not produce a verdict"

let test_ext_garbage_command () =
  (* a command that runs but speaks no SAT-competition protocol *)
  let s =
    Backend.instantiate (Backend.external_solver ~cmd:"echo not-a-solver" ())
  in
  let v = Backend.new_var s in
  Backend.add_clause s [ Backend.pos v ];
  match Backend.solve s with
  | Backend.Unknown why ->
    Helpers.check_bool "unparseable output is unavailable" true
      (Backend.is_unavailable why)
  | Backend.Sat | Backend.Unsat ->
    Alcotest.fail "protocol-less output must not produce a verdict"

let test_ext_unsat_proof_roundtrip () =
  match ext_cmd () with
  | None -> () (* diam not built *)
  | Some cmd ->
    let s = Backend.instantiate (Backend.external_solver ~cmd ()) in
    let proof = Sat.Proof.create () in
    Backend.set_proof s proof;
    let a = Backend.pos (Backend.new_var s) in
    let b = Backend.pos (Backend.new_var s) in
    Backend.add_clause s [ a; b ];
    Backend.add_clause s [ Backend.negate a ];
    Backend.add_clause s [ Backend.negate b ];
    (match Backend.solve s with
    | Backend.Unsat -> ()
    | Backend.Sat -> Alcotest.fail "contradiction must be unsat"
    | Backend.Unknown why -> Alcotest.fail ("ext stood down: " ^ why));
    (* the DRUP derivation came back across the process boundary *)
    Helpers.check_bool "proof events recorded" true
      (Sat.Proof.events proof <> [])

(* ----- chaos faults cross the backend seam and are detectable ----- *)

let chaos_seed = 1234

let test_chaos_flip_detected_through_seam () =
  Chaos.with_fault ~seed:chaos_seed Chaos.Flip_to_unsat (fun () ->
      let cnf = { Cnf.num_vars = 1; clauses = [ [ Backend.pos 0 ] ] } in
      let lied = not (agrees (Backend.bdd_oracle ()) cnf) in
      Helpers.check_bool "fault fired at the backend seam" true
        (Chaos.injections () > 0);
      (* the differential oracle sees the flip: a satisfiable instance
         reported Unsat disagrees with exhaustive search *)
      Helpers.check_bool "flip is detectable by the oracle" true lied)

let test_chaos_corrupt_model_detected () =
  Chaos.with_fault ~seed:chaos_seed Chaos.Corrupt_model (fun () ->
      let cnf =
        { Cnf.num_vars = 2; clauses = [ [ Backend.pos 0 ]; [ Backend.pos 1 ] ] }
      in
      let lied = not (agrees (Backend.bdd_oracle ()) cnf) in
      Helpers.check_bool "fault fired at the backend seam" true
        (Chaos.injections () > 0);
      Helpers.check_bool "corrupt model fails evaluation" true lied)

(* ----- selection: names, specs, and the (strategy x backend) race ----- *)

let test_spec_parsing () =
  (match Backend.spec_of_string "bdd" with
  | Ok (Backend.Single b) -> Helpers.check Alcotest.string "bdd name" "bdd" b.Backend.b_name
  | _ -> Alcotest.fail "bdd must parse as a single backend");
  (match Backend.spec_of_string "race" with
  | Ok (Backend.Race bs) ->
    Helpers.check_bool "race enlists at least reference+bdd" true
      (List.length bs >= 2)
  | _ -> Alcotest.fail "race must parse as a race");
  (match Backend.spec_of_string "no-such-backend" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown names must be rejected");
  (* per-instance configuration shows up in the digest identity *)
  Helpers.check_bool "inprocess choice is part of the identity" true
    (not
       (String.equal
          (Backend.reference ()).Backend.b_id
          (Backend.reference ~inprocess:false ()).Backend.b_id))

let test_race_verdict_matches_reference () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:4 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  let verify spec =
    Core.Engine.verify
      ~config:{ Core.Engine.default with Core.Engine.backend = Some spec }
      net ~target:"t"
  in
  let single = verify (Backend.Single (Backend.reference ())) in
  let race =
    verify (Backend.Race [ Backend.reference (); Backend.bdd_oracle () ])
  in
  match (single, race) with
  | Core.Engine.Violated p, Core.Engine.Violated q ->
    (* rank selection: the reference cell of the winning strategy
       outranks its bdd twin, so the verdict text is unchanged *)
    Helpers.check Alcotest.string "same winning cell" p.strategy q.strategy;
    Helpers.check_int "same counterexample depth" p.cex.Bmc.depth
      q.cex.Bmc.depth
  | _ -> Alcotest.fail "counter must be Violated under both specs"

let suite =
  [
    prop_reference_and_bdd_agree;
    prop_ext_agrees;
    prop_bdd_unknowns_are_node_limit;
    Alcotest.test_case "bmc corpus agreement" `Quick test_bmc_corpus_agreement;
    Alcotest.test_case "ext missing binary degrades" `Quick
      test_ext_missing_binary;
    Alcotest.test_case "ext garbage output degrades" `Quick
      test_ext_garbage_command;
    Alcotest.test_case "ext unsat proof round-trip" `Quick
      test_ext_unsat_proof_roundtrip;
    Alcotest.test_case "chaos flip detected through seam" `Quick
      test_chaos_flip_detected_through_seam;
    Alcotest.test_case "chaos corrupt model detected" `Quick
      test_chaos_corrupt_model_detected;
    Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "race verdict matches reference" `Quick
      test_race_verdict_matches_reference;
  ]
