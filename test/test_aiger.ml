module Net = Netlist.Net
module Lit = Netlist.Lit

let sample =
  "aag 7 2 1 2 4\n\
   2\n\
   4\n\
   6 8 0\n\
   6\n\
   12\n\
   8 4 2\n\
   10 6 5\n\
   12 10 9\n\
   14 12 6\n\
   i0 x\n\
   i1 y\n\
   l0 state\n\
   o0 latch_out\n\
   o1 gate\n"

let test_parse_sample () =
  let net = Textio.Aiger.parse sample in
  Helpers.check_int "inputs" 2 (Net.num_inputs net);
  Helpers.check_int "latches" 1 (Net.num_regs net);
  Helpers.check_int "outputs" 2 (List.length (Net.outputs net));
  (* symbol names preserved *)
  Helpers.check_bool "named output" true
    (List.mem_assoc "latch_out" (Net.outputs net))

let test_parse_reset_values () =
  let text = "aag 3 1 2 0 0\n2\n4 2 1\n6 2 6\n" in
  let net = Textio.Aiger.parse text in
  let inits =
    List.map (fun v -> (Net.reg_of net v).Net.r_init) (Net.regs net)
  in
  Helpers.check_bool "reset 1 and uninitialized" true
    (inits = [ Net.Init1; Net.Init_x ])

let test_parse_errors () =
  let expect ~line:expected text =
    match Textio.Aiger.parse text with
    | exception Textio.Parse_error { line; msg } ->
      Alcotest.(check int) (Printf.sprintf "line of %S" msg) expected line
    | _ -> Alcotest.fail "expected failure"
  in
  expect ~line:1 "aag 1 1\n";
  expect ~line:2 "aag 1 1 0 0 0\n3\n";
  (* negated input literal *)
  expect ~line:3 "aag 2 0 0 1 1\n4\n5 4 5\n" (* negated AND lhs: lhs 5 odd *);
  (* truncated file: fewer lines than the header promises *)
  expect ~line:2 "aag 2 2 0 0 0\n2\n";
  (* non-numeric where a literal is expected *)
  expect ~line:2 "aag 1 1 0 0 0\nbogus\n"

let test_roundtrip_semantics () =
  let net, t = Helpers.rand_net_with_target 77 ~inputs:3 ~regs:4 ~gates:12 in
  let back = Textio.Aiger.parse (Textio.Aiger.to_string net) in
  let t' = List.assoc "t" (Net.targets back) in
  Helpers.check_bool "roundtrip trace-equivalent" true
    (Transform.Equiv.sim_equivalent net t back t')

let test_latch_netlists_rejected () =
  let net = Net.create ~phases:2 () in
  let a = Net.add_input net "a" in
  let l = Net.add_latch net ~phase:0 "l" in
  Net.set_latch_data net l a;
  match Textio.Aiger.to_string net with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "c-phase netlists have no AIGER form"

let prop_roundtrip =
  Helpers.qtest ~count:60 "aag roundtrip preserves semantics"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:10 in
      let back = Textio.Aiger.parse (Textio.Aiger.to_string net) in
      let t' = List.assoc "t" (Net.targets back) in
      Transform.Equiv.sim_equivalent ~steps:16 net t back t')

let prop_roundtrip_exact_counts =
  Helpers.qtest ~count:60 "aag roundtrip preserves structure sizes"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:10 in
      let back = Textio.Aiger.parse (Textio.Aiger.to_string net) in
      Net.num_inputs back = Net.num_inputs net
      && Net.num_regs back = Net.num_regs net
      && Net.num_ands back = Net.num_ands net)

(* write→parse→write fixpoint: the writer renumbers variables
   compactly, so the first write may re-index, but a second
   parse/write round must reproduce its output byte for byte *)
let aiger_fixpoint net =
  let s2 = Textio.Aiger.to_string (Textio.Aiger.parse (Textio.Aiger.to_string net)) in
  let s3 = Textio.Aiger.to_string (Textio.Aiger.parse s2) in
  String.equal s2 s3

let prop_fixpoint_random =
  Helpers.qtest ~count:60 "aag write fixpoint (random nets)"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, _ = Helpers.rand_net_with_target seed ~inputs:3 ~regs:3 ~gates:10 in
      aiger_fixpoint net)

let prop_fixpoint_fuzz =
  Helpers.qtest ~count:30 "aag write fixpoint (fuzzer designs)"
    QCheck.(int_bound 200)
    (fun i -> aiger_fixpoint (Workload.Fuzz.case ~seed:7 i).Workload.Fuzz.net)

let suite =
  [
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "reset values" `Quick test_parse_reset_values;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "roundtrip semantics" `Quick test_roundtrip_semantics;
    Alcotest.test_case "latch netlists rejected" `Quick test_latch_netlists_rejected;
    prop_roundtrip;
    prop_roundtrip_exact_counts;
    prop_fixpoint_random;
    prop_fixpoint_fuzz;
  ]
