module Net = Netlist.Net
module Lit = Netlist.Lit

let test_inductive_invariant () =
  (* complementary flags: inductive at k = 0 (the step case alone
     suffices... after the base state excludes the bad combination) *)
  let net = Net.create () in
  let a = Net.add_input net "a" in
  let r0 = Net.add_reg net ~init:Net.Init0 "r0" in
  let r1 = Net.add_reg net ~init:Net.Init1 "r1" in
  Net.set_next net r0 a;
  Net.set_next net r1 (Lit.neg a);
  Net.add_target net "both" (Net.add_and net r0 r1);
  match Core.Induction.prove net ~target:"both" with
  | Core.Induction.Proved k -> Helpers.check_bool "small k" true (k <= 1)
  | Core.Induction.Cex _ -> Alcotest.fail "property holds"
  | Core.Induction.Unknown _ | Core.Induction.Exhausted _ ->
    Alcotest.fail "property is inductive"

let test_needs_uniqueness () =
  (* a ring counter's unreachable pattern: plain induction fails at
     every k (the bad states are closed under the transition), but
     simple-path uniqueness terminates *)
  let net = Net.create () in
  let ring = Workload.Gen.ring net ~name:"r" ~length:4 in
  (* two tokens at once: unreachable from the one-hot initial state *)
  let t =
    match ring.Workload.Gen.regs with
    | a :: b :: _ -> Net.add_and net a b
    | _ -> assert false
  in
  Net.add_target net "two_tokens" t;
  (match Core.Induction.prove ~unique:false ~max_k:6 net ~target:"two_tokens" with
  | Core.Induction.Unknown _ -> ()
  | Core.Induction.Proved k ->
    (* plain induction may still close it at some k; accept but record *)
    Helpers.check_bool "proved without uniqueness" true (k >= 0)
  | Core.Induction.Cex _ | Core.Induction.Exhausted _ ->
    Alcotest.fail "property holds");
  match Core.Induction.prove ~unique:true ~max_k:20 net ~target:"two_tokens" with
  | Core.Induction.Proved _ -> ()
  | Core.Induction.Cex _ -> Alcotest.fail "property holds"
  | Core.Induction.Unknown _ | Core.Induction.Exhausted _ ->
    Alcotest.fail "uniqueness makes the ring provable"

let test_finds_counterexample () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:3 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  match Core.Induction.prove net ~target:"t" with
  | Core.Induction.Cex cex ->
    Helpers.check_int "counter saturates at 7" 7 cex.Bmc.depth;
    Helpers.check_bool "replay" true
      (Bmc.replay net (List.assoc "t" (Net.targets net)) cex)
  | Core.Induction.Proved _ | Core.Induction.Unknown _
  | Core.Induction.Exhausted _ ->
    Alcotest.fail "counter does reach all-ones"

let test_combinational () =
  let net = Net.create () in
  let a = Net.add_input net "a" in
  Net.add_target net "t" (Net.add_and net a (Lit.neg a));
  match Core.Induction.prove net ~target:"t" with
  | Core.Induction.Proved 0 -> ()
  | _ -> Alcotest.fail "constant-false target proved immediately"

let test_gives_up () =
  (* a deep counter's saturation is true but beyond max_k's base
     case reach only if the target is reachable late; use an
     unreachable variant instead: counter with enable stuck low is
     provable but a free counter's all-ones needs depth 2^b - 1 *)
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:6 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  match Core.Induction.prove ~max_k:3 net ~target:"t" with
  | Core.Induction.Unknown k -> Helpers.check_int "gave up at max_k" 3 k
  | Core.Induction.Cex _ -> Alcotest.fail "not reachable within k=3"
  | Core.Induction.Proved _ -> Alcotest.fail "reachable at 63, not provable"
  | Core.Induction.Exhausted _ -> Alcotest.fail "no budget was given"

let prop_agrees_with_exact =
  Helpers.qtest ~count:30 "induction results agree with explicit search"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let net, t = Helpers.rand_net_with_target seed ~inputs:2 ~regs:4 ~gates:8 in
      Net.add_target net "p" t;
      match Core.Induction.prove ~max_k:8 net ~target:"p" with
      | Core.Induction.Unknown _ -> true
      | Core.Induction.Exhausted _ -> false (* no budget given *)
      | Core.Induction.Proved _ -> (
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> e.Core.Exact.earliest_hit = None)
      | Core.Induction.Cex cex -> (
        Bmc.replay net t cex
        &&
        match Core.Exact.explore net t with
        | None -> true
        | Some e -> e.Core.Exact.earliest_hit = Some cex.Bmc.depth))

let suite =
  [
    Alcotest.test_case "inductive invariant" `Quick test_inductive_invariant;
    Alcotest.test_case "uniqueness needed" `Quick test_needs_uniqueness;
    Alcotest.test_case "counterexample" `Quick test_finds_counterexample;
    Alcotest.test_case "combinational" `Quick test_combinational;
    Alcotest.test_case "gives up" `Quick test_gives_up;
    prop_agrees_with_exact;
  ]
