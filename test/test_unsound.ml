(* Sections 3.5/3.6: witness netlists proving that bounds computed on
   over- or under-approximated netlists can be wrong in both
   directions — which is why Localize and Casesplit deliberately have
   no Translate.t. *)

module Net = Netlist.Net
module Lit = Netlist.Lit

let bits = 3

(* free-running counter with an all-ones target: earliest hit 2^bits - 1 *)
let counter_net () =
  let net = Net.create () in
  let block = Workload.Gen.counter net ~name:"c" ~bits ~enable:Lit.true_ in
  Net.add_target net "t" block.Workload.Gen.out;
  (net, block)

let earliest net t =
  match Core.Exact.explore net t with
  | Some e -> e.Core.Exact.earliest_hit
  | None -> Alcotest.fail "exact exploration expected to succeed"

let test_localization_can_shrink_bounds () =
  (* cut every register's next-state cone: each register becomes
     freely loadable, the localized diameter collapses to 2, but the
     original needs 2^bits - 1 steps *)
  let net, block = counter_net () in
  let t = List.assoc "t" (Net.targets net) in
  let cut =
    List.map
      (fun r -> Lit.var (Net.reg_of net (Lit.var r)).Net.next)
      block.Workload.Gen.regs
  in
  let localized = Transform.Localize.run net ~cut in
  let b = Core.Bound.target_named localized.Transform.Rebuild.net "t" in
  let original_hit = Option.get (earliest net t) in
  Helpers.check_int "original earliest hit" ((1 lsl bits) - 1) original_hit;
  (* the localized bound is small... *)
  Helpers.check_bool "localized bound collapsed" true
    (b.Core.Bound.bound <= 3);
  (* ...and would be an UNSOUND BMC completeness threshold *)
  Helpers.check_bool "localized bound misses the hit" true
    (original_hit > b.Core.Bound.bound - 1)

let test_localization_can_grow_bounds () =
  (* the other direction: a counter whose enable is stuck at 0 has a
     trivial diameter, but localizing the enable frees it *)
  let net = Net.create () in
  let stuck = Net.add_and net Lit.false_ Lit.true_ in
  ignore stuck;
  let enable_reg = Net.add_reg net ~init:Net.Init0 "en" in
  Net.set_next net enable_reg enable_reg;
  let block = Workload.Gen.counter net ~name:"c" ~bits ~enable:enable_reg in
  Net.add_target net "t" block.Workload.Gen.out;
  let t = List.assoc "t" (Net.targets net) in
  Helpers.check_bool "target unreachable originally" true (earliest net t = None);
  let localized = Transform.Localize.run net ~cut:[ Lit.var enable_reg ] in
  let net' = localized.Transform.Rebuild.net in
  let t' = List.assoc "t" (Net.targets net') in
  (* now reachable, with a long distance: reachable states and
     transitions were added *)
  match earliest net' t' with
  | Some hit -> Helpers.check_int "localized hit distance" ((1 lsl bits) - 1) hit
  | None -> Alcotest.fail "localization should free the counter"

let test_casesplit_can_shrink_bounds () =
  (* case-splitting the enable to 0 freezes the counter: the split
     netlist has diameter 1, yet the original hits at 2^bits - 1 *)
  let net = Net.create () in
  let enable = Net.add_input net "en" in
  let block = Workload.Gen.counter net ~name:"c" ~bits ~enable in
  Net.add_target net "t" block.Workload.Gen.out;
  let t = List.assoc "t" (Net.targets net) in
  let split = Transform.Casesplit.run net ~assignment:[ ("en", false) ] in
  let reduced, _ = Transform.Com.run split.Transform.Rebuild.net in
  let b = Core.Bound.target_named reduced.Transform.Rebuild.net "t" in
  Helpers.check_bool "split bound trivial" true (b.Core.Bound.bound <= 1);
  let original_hit = Option.get (earliest net t) in
  Helpers.check_bool "unsound for the original" true
    (original_hit > b.Core.Bound.bound - 1)

let test_casesplit_can_grow_diameter () =
  (* a loadable counter reaches any state in one step (small exact
     diameter); splitting load := 0 leaves pure counting (large
     diameter): reachable transitions vanished *)
  let net = Net.create () in
  let load = Net.add_input net "load" in
  let data = List.init bits (fun i -> Net.add_input net (Printf.sprintf "d%d" i)) in
  let regs = List.init bits (fun i -> Net.add_reg net (Printf.sprintf "r%d" i)) in
  let rec wire i carry =
    match List.nth_opt regs i with
    | None -> carry
    | Some r ->
      let toggled = Net.add_xor net r carry in
      Net.set_next net r
        (Net.add_mux net ~sel:load ~t1:(List.nth data i) ~t0:toggled);
      wire (i + 1) (Net.add_and net carry r)
  in
  let all_ones = wire 0 Lit.true_ in
  Net.add_target net "t" all_ones;
  let t = List.assoc "t" (Net.targets net) in
  let exact = Option.get (Core.Exact.explore net t) in
  Helpers.check_bool "loadable counter has tiny pair diameter" true
    (exact.Core.Exact.pair_diameter <= 2);
  let split = Transform.Casesplit.run net ~assignment:[ ("load", false) ] in
  let net' = split.Transform.Rebuild.net in
  let t' = List.assoc "t" (Net.targets net') in
  let exact' = Option.get (Core.Exact.explore net' t') in
  Helpers.check_bool "split diameter grew" true
    (exact'.Core.Exact.pair_diameter > exact.Core.Exact.pair_diameter)

let test_casesplit_hits_remain_valid () =
  (* the sound direction of Section 3.6: a hit on the split netlist is
     a hit of the original *)
  let net = Net.create () in
  let enable = Net.add_input net "en" in
  let block = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable in
  Net.add_target net "t" block.Workload.Gen.out;
  let split = Transform.Casesplit.run net ~assignment:[ ("en", true) ] in
  match Bmc.check split.Transform.Rebuild.net ~target:"t" ~depth:8 with
  | Bmc.No_hit _ | Bmc.Unknown _ -> Alcotest.fail "split counter should hit"
  | Bmc.Hit cex ->
    (* replay the same depth on the original with en forced high *)
    (match Bmc.check net ~target:"t" ~depth:cex.Bmc.depth with
    | Bmc.Hit _ -> ()
    | Bmc.No_hit _ | Bmc.Unknown _ ->
      Alcotest.fail "hit must transfer to the original")

let suite =
  [
    Alcotest.test_case "localization can shrink bounds (unsound)" `Quick
      test_localization_can_shrink_bounds;
    Alcotest.test_case "localization can grow bounds" `Quick
      test_localization_can_grow_bounds;
    Alcotest.test_case "case split can shrink bounds (unsound)" `Quick
      test_casesplit_can_shrink_bounds;
    Alcotest.test_case "case split can grow the diameter" `Quick
      test_casesplit_can_grow_diameter;
    Alcotest.test_case "case-split hits transfer" `Quick
      test_casesplit_hits_remain_valid;
  ]
