module Net = Netlist.Net
module Lit = Netlist.Lit

let cex_frames () =
  let net = Net.create () in
  let c = Workload.Gen.counter net ~name:"c" ~bits:2 ~enable:Lit.true_ in
  Net.add_target net "t" c.Workload.Gen.out;
  match Bmc.check net ~target:"t" ~depth:5 with
  | Bmc.Hit cex -> (net, cex)
  | Bmc.No_hit _ | Bmc.Unknown _ -> Alcotest.fail "counter must hit"

let test_frames_shape () =
  let net, cex = cex_frames () in
  let frames = Bmc.frames_of_cex net cex in
  Helpers.check_int "one frame per step" (cex.Bmc.depth + 1) (Array.length frames);
  Helpers.check_int "frame width" (Net.num_vars net) (Array.length frames.(0));
  (* the target is high in the final frame *)
  let t = List.assoc "t" (Net.targets net) in
  Helpers.check_bool "target hit in last frame" true
    (frames.(cex.Bmc.depth).(Lit.var t)
     = (if Lit.is_neg t then Netlist.Sim.V0 else Netlist.Sim.V1))

let test_vcd_structure () =
  let net, cex = cex_frames () in
  let frames = Bmc.frames_of_cex net cex in
  let text = Textio.Vcd.dump net frames in
  let has s =
    let n = String.length s and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = s || go (i + 1)) in
    go 0
  in
  Helpers.check_bool "header" true (has "$enddefinitions");
  Helpers.check_bool "declares the counter bits" true (has "c_c0");
  Helpers.check_bool "timestamps" true (has "#0" && has (Printf.sprintf "#%d" cex.Bmc.depth));
  Helpers.check_bool "initial dump" true (has "$dumpvars")

let test_change_compression () =
  (* a constant signal appears once in the dump, not once per step *)
  let net = Net.create () in
  let r = Net.add_reg net ~init:Net.Init1 "stuck" in
  Net.set_next net r r;
  Net.add_target net "t" r;
  (match Bmc.check net ~target:"t" ~depth:4 with
  | Bmc.Hit cex ->
    let frames = Bmc.frames_of_cex net cex in
    let text = Textio.Vcd.dump net frames in
    let occurrences =
      let n = String.length text in
      let rec go i acc =
        if i >= n - 1 then acc
        else if text.[i] = '1' && text.[i + 1] = '!' then go (i + 1) (acc + 1)
        else go (i + 1) acc
      in
      go 0 0
    in
    Helpers.check_int "single change record" 1 occurrences
  | Bmc.No_hit _ | Bmc.Unknown _ ->
    Alcotest.fail "stuck-at-1 hits immediately")

let test_certified_cex_roundtrips () =
  (* a counterexample that passed certification dumps to a complete
     waveform: the same replay that certified it drives the writer *)
  let net, cex = cex_frames () in
  let t = List.assoc "t" (Net.targets net) in
  (match Core.Certify.check_cex net t cex with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "cex failed certification: %s" msg);
  let frames = Bmc.frames_of_cex net cex in
  let path = Filename.temp_file "diambound_cex" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Textio.Vcd.write_file path net frames;
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Helpers.check_bool "file round-trips the dump" true
        (String.equal text (Textio.Vcd.dump net frames));
      let has s =
        let n = String.length s and m = String.length text in
        let rec go i = i + n <= m && (String.sub text i n = s || go (i + 1)) in
        go 0
      in
      Helpers.check_bool "covers the hit time" true
        (has (Printf.sprintf "#%d" cex.Bmc.depth)))

let suite =
  [
    Alcotest.test_case "frames shape" `Quick test_frames_shape;
    Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
    Alcotest.test_case "change compression" `Quick test_change_compression;
    Alcotest.test_case "certified cex roundtrips" `Quick
      test_certified_cex_roundtrips;
  ]
