module Net = Netlist.Net

let test_determinism () =
  let a = Workload.Iscas.by_name "S5378" in
  let b = Workload.Iscas.by_name "S5378" in
  Helpers.check_bool "same dump" true
    (String.equal (Textio.Netfmt.to_string a) (Textio.Netfmt.to_string b))

let test_target_counts () =
  List.iter
    (fun p ->
      let net = Workload.Iscas.build p in
      Helpers.check_int
        (Printf.sprintf "%s target count" p.Workload.Iscas.name)
        p.Workload.Iscas.targets
        (List.length (Net.targets net)))
    (List.filteri (fun i _ -> i < 8) Workload.Iscas.profiles)

let test_register_budgets () =
  (* generated register populations stay near the profile budgets *)
  List.iter
    (fun p ->
      let net = Workload.Iscas.build p in
      let total = p.Workload.Iscas.ac + p.Workload.Iscas.table + p.Workload.Iscas.gc in
      let got = Net.num_regs net in
      Helpers.check_bool
        (Printf.sprintf "%s register budget (%d vs %d)" p.Workload.Iscas.name
           total got)
        true
        (abs (got - total) <= max 8 (total / 5)))
    (List.filteri (fun i _ -> i < 10) Workload.Iscas.profiles)

let test_well_formed () =
  List.iter
    (fun name -> Net.check (Workload.Iscas.by_name name))
    [ "S27"; "S953"; "S1488"; "PROLOG" ];
  List.iter
    (fun name -> Net.check (Workload.Gp.by_name name))
    [ "L_LRU"; "D_DASA"; "W_SFA" ]

let test_unknown_design () =
  (match Workload.Iscas.by_name "NOPE" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown design should raise");
  Helpers.check_int "41 ISCAS designs" 42 (List.length Workload.Iscas.names);
  Helpers.check_int "29 GP designs" 29 (List.length Workload.Gp.names)

let test_gp_is_latched () =
  let net = Workload.Gp.by_name "W_SFA" in
  Helpers.check_int "no registers before abstraction" 0 (Net.num_regs net);
  Helpers.check_bool "has latches" true (Net.num_latches net > 0);
  Helpers.check_int "two phases" 2 (Net.phases net)

let test_rng_determinism () =
  let a = Workload.Rng.create 1 in
  let b = Workload.Rng.create 1 in
  let seq r = List.init 20 (fun _ -> Workload.Rng.int r 1000) in
  Helpers.check_bool "same sequence" true (seq a = seq b)

let test_rng_bounds () =
  let rng = Workload.Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Workload.Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "out of range"
  done

let test_rng_fork_pure () =
  (* fork is a pure function of the creation seed and index: draws
     made on the parent before or after must not change the child *)
  let fresh = Workload.Rng.create 42 in
  let drained = Workload.Rng.create 42 in
  for _ = 1 to 17 do
    ignore (Workload.Rng.int drained 100)
  done;
  let seq r = List.init 10 (fun _ -> Workload.Rng.int r 1_000_000) in
  List.iter
    (fun i ->
      Helpers.check_bool
        (Printf.sprintf "fork %d ignores parent draws" i)
        true
        (seq (Workload.Rng.fork fresh i) = seq (Workload.Rng.fork drained i)))
    [ 0; 1; 5; 1000 ];
  (match Workload.Rng.fork fresh (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fork of a negative index should raise")

let test_rng_fork_independent () =
  (* sibling forks draw visibly different streams, and forking does
     not advance the parent *)
  let parent = Workload.Rng.create 7 in
  let a = List.init 10 (fun _ -> Workload.Rng.int (Workload.Rng.fork parent 0) 1_000_000) in
  let seqs =
    List.init 50 (fun i ->
        let c = Workload.Rng.fork parent i in
        List.init 10 (fun _ -> Workload.Rng.int c 1_000_000))
  in
  Helpers.check_int "50 distinct fork streams" 50
    (List.length (List.sort_uniq compare seqs));
  let b = List.init 10 (fun _ -> Workload.Rng.int (Workload.Rng.fork parent 0) 1_000_000) in
  Helpers.check_bool "fork does not advance the parent" true (a = b);
  (* parent draws unaffected by the same-seed no-fork sequence *)
  let plain = Workload.Rng.create 7 in
  Helpers.check_bool "parent stream unchanged by forking" true
    (List.init 10 (fun _ -> Workload.Rng.int parent 1000)
    = List.init 10 (fun _ -> Workload.Rng.int plain 1000))

let test_rng_split () =
  (* split children are deterministic and independent of each other *)
  let mk () = Workload.Rng.create 11 in
  let p1 = mk () and p2 = mk () in
  let c1 = Workload.Rng.split p1 and c2 = Workload.Rng.split p2 in
  let seq r = List.init 10 (fun _ -> Workload.Rng.int r 1_000_000) in
  Helpers.check_bool "split deterministic" true (seq c1 = seq c2);
  let p = mk () in
  let d1 = Workload.Rng.split p in
  let d2 = Workload.Rng.split p in
  Helpers.check_bool "successive splits differ" true (seq d1 <> seq d2)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "target counts" `Quick test_target_counts;
    Alcotest.test_case "register budgets" `Quick test_register_budgets;
    Alcotest.test_case "well-formedness" `Quick test_well_formed;
    Alcotest.test_case "unknown design" `Quick test_unknown_design;
    Alcotest.test_case "GP designs are latch-based" `Quick test_gp_is_latched;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng fork purity" `Quick test_rng_fork_pure;
    Alcotest.test_case "rng fork independence" `Quick test_rng_fork_independent;
    Alcotest.test_case "rng split" `Quick test_rng_split;
  ]
