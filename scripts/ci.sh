#!/usr/bin/env bash
# CI entry point: build, test, and a budgeted end-to-end smoke run.
# Every stage is wrapped in timeout(1) so a hang fails the pipeline
# instead of stalling it.
set -euo pipefail
cd "$(dirname "$0")/.."

timeout 300 dune build
timeout 900 dune runtest

# Smoke-test the resource governance end to end: a 1-second deadline
# on a real design must come back promptly with a definite verdict
# (0/1) or an explicit inconclusive (3) — anything else is a bug.
rc=0
timeout 60 dune exec bin/verify_tool.exe -- examples/ring5.bench --timeout 1 \
  || rc=$?
case "$rc" in
  0|1|3) echo "ci: verify smoke exit $rc (ok)" ;;
  *) echo "ci: verify smoke exit $rc (FAIL)"; exit 1 ;;
esac

# Fault-injection smoke: with a fixed seed, the chaos suite injects
# faults at the solver/BMC/engine reporting boundaries and asserts
# every one is caught by certification (downgraded, never reported
# as a wrong verdict).  A fixed seed keeps the stage deterministic.
DIAMBOUND_CHAOS_SEED=1234 timeout 300 dune exec test/test_main.exe -- test chaos

# Certified-counterexample smoke: a known-violated design under
# --certify must still report the violation (exit 1) — i.e. the
# certification path accepts genuine answers and only withholds
# corrupted ones.
rc=0
timeout 60 dune exec bin/bmc_tool.exe -- examples/counter3.bench --certify \
  || rc=$?
case "$rc" in
  1) echo "ci: certified bmc smoke exit $rc (ok)" ;;
  *) echo "ci: certified bmc smoke exit $rc (FAIL)"; exit 1 ;;
esac

rc=0
timeout 60 dune exec bin/verify_tool.exe -- examples/counter3.bench --certify \
  || rc=$?
case "$rc" in
  1) echo "ci: certified verify smoke exit $rc (ok)" ;;
  *) echo "ci: certified verify smoke exit $rc (FAIL)"; exit 1 ;;
esac

# Trace smoke: a traced BMC run must leave a parseable trace carrying
# per-depth solver spans, and trace-report must digest it.  Either
# definite verdict (0/1) is fine — the stage tests the trace, not the
# verdict.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
rc=0
timeout 60 dune exec bin/bmc_tool.exe -- examples/counter3.bench \
  --trace "$tmpdir/bmc.trace.json" || rc=$?
case "$rc" in
  0|1) ;;
  *) echo "ci: traced bmc run exit $rc (FAIL)"; exit 1 ;;
esac
report=$(timeout 60 dune exec bin/diam_tool.exe -- trace-report \
  "$tmpdir/bmc.trace.json")
echo "$report" | grep -q "bmc.depth" \
  || { echo "ci: trace has no bmc.depth spans (FAIL)"; exit 1; }
echo "$report" | grep -q "per-depth BMC cost" \
  || { echo "ci: trace-report lost the depth table (FAIL)"; exit 1; }
echo "ci: trace smoke ok"

# JSONL exporter + env-var activation smoke, through a different tool.
DIAMBOUND_TRACE="$tmpdir/diam.trace.jsonl" timeout 60 \
  dune exec bin/diam_tool.exe -- examples/ring5.bench > /dev/null
timeout 60 dune exec bin/diam_tool.exe -- trace-report \
  "$tmpdir/diam.trace.jsonl" > /dev/null \
  || { echo "ci: jsonl trace unreadable (FAIL)"; exit 1; }
echo "ci: jsonl trace smoke ok"

# Parallel determinism: --jobs 2 must produce byte-identical verdicts
# to --jobs 1 on every example design — the portfolio's rank-based
# selection guarantee, checked end to end.
for f in examples/*.bench; do
  rc1=0; rc2=0
  timeout 120 dune exec bin/verify_tool.exe -- "$f" --jobs 1 \
    > "$tmpdir/j1.out" || rc1=$?
  timeout 120 dune exec bin/verify_tool.exe -- "$f" --jobs 2 \
    > "$tmpdir/j2.out" || rc2=$?
  [ "$rc1" = "$rc2" ] \
    || { echo "ci: $f exit codes differ across --jobs (FAIL)"; exit 1; }
  diff -u "$tmpdir/j1.out" "$tmpdir/j2.out" \
    || { echo "ci: $f verdicts differ across --jobs (FAIL)"; exit 1; }
done
echo "ci: parallel determinism ok"

# Portfolio bench: the sequential-vs-portfolio experiment must run to
# completion and leave its speedup gauges in a baseline-compatible
# stats snapshot (portfolio.best_speedup_x100 et al).
timeout 300 dune exec bench/main.exe -- portfolio \
  --stats-json "$tmpdir/portfolio.json" > /dev/null
grep -q "portfolio.best_speedup_x100" "$tmpdir/portfolio.json" \
  || { echo "ci: portfolio speedup gauge missing (FAIL)"; exit 1; }
timeout 60 dune exec bench/main.exe -- --baseline "$tmpdir/portfolio.json" \
  --against "$tmpdir/portfolio.json" --fail-on-regress 0.1 > /dev/null \
  || { echo "ci: portfolio snapshot not baseline-compatible (FAIL)"; exit 1; }
echo "ci: portfolio bench ok"

# BMC inprocessing gate: run the BMC bench workload (inprocessing on
# vs off per design) against the committed snapshot.  The threshold is
# generous — CI machines vary — but a gross slowdown in the solver hot
# loops or the simplifier fails the pipeline.  The experiment itself
# also asserts on/off verdict consistency per design.
timeout 600 dune exec bench/main.exe -- bmc \
  --baseline BENCH_0001_bmc.json --fail-on-regress 100 \
  --stats-json "$tmpdir/bmc.json" > "$tmpdir/bmc.out" \
  || { cat "$tmpdir/bmc.out"; echo "ci: bmc bench regressed (FAIL)"; exit 1; }
grep -q "consistent=true" "$tmpdir/bmc.out" \
  || { echo "ci: bmc on/off verdicts inconsistent (FAIL)"; exit 1; }
grep -q "bmc_bench.conflict_reduction_pct" "$tmpdir/bmc.json" \
  || { echo "ci: bmc reduction gauge missing (FAIL)"; exit 1; }
echo "ci: bmc inprocessing gate ok"

# Corpus determinism: the corpus walk over examples/ must be
# byte-identical (stdout is timing-free by design) and report the
# same exit code for --jobs 1 and --jobs 2.  Any of the contract's
# exit codes (0 all-ok / 1 finding / 3 inconclusive-only) is fine —
# the stage tests determinism, not the verdicts.
rc1=0; rc2=0
timeout 300 dune exec bin/diam_tool.exe -- corpus examples/ --jobs 1 \
  > "$tmpdir/corpus1.out" || rc1=$?
timeout 300 dune exec bin/diam_tool.exe -- corpus examples/ --jobs 2 \
  > "$tmpdir/corpus2.out" || rc2=$?
case "$rc1" in
  0|1|3) ;;
  *) echo "ci: corpus walk exit $rc1 (FAIL)"; exit 1 ;;
esac
[ "$rc1" = "$rc2" ] \
  || { echo "ci: corpus exit codes differ across --jobs (FAIL)"; exit 1; }
diff -u "$tmpdir/corpus1.out" "$tmpdir/corpus2.out" \
  || { echo "ci: corpus reports differ across --jobs (FAIL)"; exit 1; }
echo "ci: corpus determinism ok"

# Corpus snapshot gate: the examples/ corpus stats must stay
# baseline-compatible with the committed snapshot and within a
# generous regression threshold.
rc=0
timeout 300 dune exec bin/diam_tool.exe -- corpus examples/ \
  --baseline BENCH_0002_corpus.json --fail-on-regress 100 \
  --stats-json "$tmpdir/corpus.json" > "$tmpdir/corpus.out" || rc=$?
case "$rc" in
  0|1|3) ;;
  *) cat "$tmpdir/corpus.out"; echo "ci: corpus gate exit $rc (FAIL)"; exit 1 ;;
esac
grep -q "REGRESSION" "$tmpdir/corpus.out" \
  && { cat "$tmpdir/corpus.out"; echo "ci: corpus regressed (FAIL)"; exit 1; }
grep -q '"corpus.files"' "$tmpdir/corpus.json" \
  || { echo "ci: corpus tallies missing from snapshot (FAIL)"; exit 1; }
echo "ci: corpus snapshot gate ok"

# Fuzz smoke: a fixed-seed campaign on a healthy build must report
# zero findings — each design runs through the differential oracle
# matrix (ladder / no-inprocessing / portfolio / expired budget), so
# a single finding here is a real engine bug, and the campaign exits 1.
timeout 600 dune exec bin/diam_tool.exe -- fuzz --count 20 --seed 1 \
  > "$tmpdir/fuzz.out" \
  || { cat "$tmpdir/fuzz.out"; echo "ci: fuzz campaign found bugs (FAIL)"; exit 1; }
grep -q "fuzz: 20 cases, 0 findings" "$tmpdir/fuzz.out" \
  || { cat "$tmpdir/fuzz.out"; echo "ci: fuzz summary malformed (FAIL)"; exit 1; }
echo "ci: fuzz smoke ok"

# Repro replay: minimal netlists shrunk from past chaos findings are
# committed under test/repros/; every one must still parse and verify
# without a crash (the walk itself is the assertion — a malformed or
# crashed tally is a finding and a different exit).
rc=0
timeout 300 dune exec bin/diam_tool.exe -- corpus test/repros/ \
  > "$tmpdir/repros.out" || rc=$?
case "$rc" in
  0|1) ;;
  *) cat "$tmpdir/repros.out"; echo "ci: repro replay exit $rc (FAIL)"; exit 1 ;;
esac
grep -qE "0 malformed, 0 crashed" "$tmpdir/repros.out" \
  || { cat "$tmpdir/repros.out"; echo "ci: repros degraded (FAIL)"; exit 1; }
echo "ci: repro replay ok"

# Chaos drill: with a seeded solver fault armed, the campaign must
# find it (findings > 0), shrink every finding to at most half the
# breeding design, and write repros that replay cleanly — one drill
# per fault class, inside the campaign test suite.
DIAMBOUND_CHAOS_SEED=1234 timeout 600 \
  dune exec test/test_main.exe -- test campaign

# Self-baseline: a snapshot diffed against itself is compatible by
# construction and must show zero regressions at any threshold.
timeout 300 dune exec bench/main.exe -- baseline \
  --stats-json "$tmpdir/bench.json" > /dev/null
timeout 60 dune exec bench/main.exe -- --baseline "$tmpdir/bench.json" \
  --against "$tmpdir/bench.json" --fail-on-regress 0.1 > /dev/null \
  || { echo "ci: self-baseline regressed (FAIL)"; exit 1; }
echo "ci: self-baseline ok"

echo "ci: all green"
