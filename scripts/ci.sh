#!/usr/bin/env bash
# CI entry point: build, test, and a budgeted end-to-end smoke run.
# Every stage is wrapped in timeout(1) so a hang fails the pipeline
# instead of stalling it.
set -euo pipefail
cd "$(dirname "$0")/.."

timeout 300 dune build
timeout 900 dune runtest

# Smoke-test the resource governance end to end: a 1-second deadline
# on a real design must come back promptly with a definite verdict
# (0/1) or an explicit inconclusive (3) — anything else is a bug.
rc=0
timeout 60 dune exec bin/verify_tool.exe -- examples/ring5.bench --timeout 1 \
  || rc=$?
case "$rc" in
  0|1|3) echo "ci: verify smoke exit $rc (ok)" ;;
  *) echo "ci: verify smoke exit $rc (FAIL)"; exit 1 ;;
esac

# Fault-injection smoke: with a fixed seed, the chaos suite injects
# faults at the solver/BMC/engine reporting boundaries and asserts
# every one is caught by certification (downgraded, never reported
# as a wrong verdict).  A fixed seed keeps the stage deterministic.
DIAMBOUND_CHAOS_SEED=1234 timeout 300 dune exec test/test_main.exe -- test chaos

# Certified-counterexample smoke: a known-violated design under
# --certify must still report the violation (exit 1) — i.e. the
# certification path accepts genuine answers and only withholds
# corrupted ones.
rc=0
timeout 60 dune exec bin/bmc_tool.exe -- examples/counter3.bench --certify \
  || rc=$?
case "$rc" in
  1) echo "ci: certified bmc smoke exit $rc (ok)" ;;
  *) echo "ci: certified bmc smoke exit $rc (FAIL)"; exit 1 ;;
esac

rc=0
timeout 60 dune exec bin/verify_tool.exe -- examples/counter3.bench --certify \
  || rc=$?
case "$rc" in
  1) echo "ci: certified verify smoke exit $rc (ok)" ;;
  *) echo "ci: certified verify smoke exit $rc (FAIL)"; exit 1 ;;
esac

# Trace smoke: a traced BMC run must leave a parseable trace carrying
# per-depth solver spans, and trace-report must digest it.  Either
# definite verdict (0/1) is fine — the stage tests the trace, not the
# verdict.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
rc=0
timeout 60 dune exec bin/bmc_tool.exe -- examples/counter3.bench \
  --trace "$tmpdir/bmc.trace.json" || rc=$?
case "$rc" in
  0|1) ;;
  *) echo "ci: traced bmc run exit $rc (FAIL)"; exit 1 ;;
esac
report=$(timeout 60 dune exec bin/diam_tool.exe -- trace-report \
  "$tmpdir/bmc.trace.json")
echo "$report" | grep -q "bmc.depth" \
  || { echo "ci: trace has no bmc.depth spans (FAIL)"; exit 1; }
echo "$report" | grep -q "per-depth BMC cost" \
  || { echo "ci: trace-report lost the depth table (FAIL)"; exit 1; }
echo "ci: trace smoke ok"

# JSONL exporter + env-var activation smoke, through a different tool.
DIAMBOUND_TRACE="$tmpdir/diam.trace.jsonl" timeout 60 \
  dune exec bin/diam_tool.exe -- examples/ring5.bench > /dev/null
timeout 60 dune exec bin/diam_tool.exe -- trace-report \
  "$tmpdir/diam.trace.jsonl" > /dev/null \
  || { echo "ci: jsonl trace unreadable (FAIL)"; exit 1; }
echo "ci: jsonl trace smoke ok"

# Parallel determinism: --jobs 2 must produce byte-identical verdicts
# to --jobs 1 on every example design — the portfolio's rank-based
# selection guarantee, checked end to end.
for f in examples/*.bench; do
  rc1=0; rc2=0
  timeout 120 dune exec bin/verify_tool.exe -- "$f" --jobs 1 \
    > "$tmpdir/j1.out" || rc1=$?
  timeout 120 dune exec bin/verify_tool.exe -- "$f" --jobs 2 \
    > "$tmpdir/j2.out" || rc2=$?
  [ "$rc1" = "$rc2" ] \
    || { echo "ci: $f exit codes differ across --jobs (FAIL)"; exit 1; }
  diff -u "$tmpdir/j1.out" "$tmpdir/j2.out" \
    || { echo "ci: $f verdicts differ across --jobs (FAIL)"; exit 1; }
done
echo "ci: parallel determinism ok"

# Backend matrix: every backend must tell the same story on the
# example designs.  The external backend (wired to our own diam sat,
# which speaks the SAT-competition protocol) always concludes, so its
# output must be byte-identical to the reference backend's; the BDD
# oracle concludes on small cones (byte-identical there) and may only
# ever degrade with a structured bdd-node-limit stand-down elsewhere
# — never a conflicting verdict, never a crash.
diam_exe=_build/default/bin/diam_tool.exe
for f in examples/*.bench; do
  rc_ref=0; rc_ext=0; rc_bdd=0
  timeout 120 dune exec bin/verify_tool.exe -- "$f" \
    > "$tmpdir/ref.out" || rc_ref=$?
  DIAMBOUND_EXT_SOLVER="$diam_exe sat" timeout 300 dune exec \
    bin/verify_tool.exe -- "$f" --backend ext > "$tmpdir/ext.out" || rc_ext=$?
  [ "$rc_ref" = "$rc_ext" ] \
    || { echo "ci: $f exit differs under ext backend (FAIL)"; exit 1; }
  diff -u "$tmpdir/ref.out" "$tmpdir/ext.out" \
    || { echo "ci: $f verdicts differ under ext backend (FAIL)"; exit 1; }
  timeout 300 dune exec bin/verify_tool.exe -- "$f" --backend bdd \
    > "$tmpdir/bdd.out" || rc_bdd=$?
  case "$rc_bdd" in
    0|1|3) ;;
    *) echo "ci: $f crashed under bdd backend (exit $rc_bdd) (FAIL)"; exit 1 ;;
  esac
  if ! diff -q "$tmpdir/ref.out" "$tmpdir/bdd.out" > /dev/null; then
    grep -q "bdd-node-limit" "$tmpdir/bdd.out" \
      || { echo "ci: $f bdd divergence without node-limit reason (FAIL)"; \
           exit 1; }
  fi
done
echo "ci: backend matrix ok"

# Missing-binary smoke: the ext backend pointed at a binary that does
# not exist must degrade to structured backend-unavailable unknowns
# and an explicit inconclusive exit (3) — never a crash, never a
# verdict.
rc=0
DIAMBOUND_EXT_SOLVER=/nonexistent/diambound-ext-solver timeout 60 \
  dune exec bin/verify_tool.exe -- examples/counter3.bench --backend ext \
  > "$tmpdir/noext.out" || rc=$?
[ "$rc" = 3 ] \
  || { echo "ci: missing ext binary exit $rc, want 3 (FAIL)"; exit 1; }
grep -q "backend-unavailable" "$tmpdir/noext.out" \
  || { echo "ci: missing ext binary reason unstructured (FAIL)"; exit 1; }
echo "ci: ext missing-binary smoke ok"

# Race determinism: the full (strategy x backend) grid must keep the
# byte-identical --jobs guarantee — rank-based cell selection, not
# wall-clock order, decides the verdict.
for f in examples/*.bench; do
  rc1=0; rc2=0
  timeout 300 dune exec bin/verify_tool.exe -- "$f" --backend race --jobs 1 \
    > "$tmpdir/race1.out" || rc1=$?
  timeout 300 dune exec bin/verify_tool.exe -- "$f" --backend race --jobs 2 \
    > "$tmpdir/race2.out" || rc2=$?
  [ "$rc1" = "$rc2" ] \
    || { echo "ci: $f race exit codes differ across --jobs (FAIL)"; exit 1; }
  diff -u "$tmpdir/race1.out" "$tmpdir/race2.out" \
    || { echo "ci: $f race verdicts differ across --jobs (FAIL)"; exit 1; }
done
echo "ci: race determinism ok"

# Portfolio bench: the sequential-vs-portfolio experiment must run to
# completion and leave its speedup gauges in a baseline-compatible
# stats snapshot (portfolio.best_speedup_x100 et al).
timeout 300 dune exec bench/main.exe -- portfolio \
  --stats-json "$tmpdir/portfolio.json" > /dev/null
grep -q "portfolio.best_speedup_x100" "$tmpdir/portfolio.json" \
  || { echo "ci: portfolio speedup gauge missing (FAIL)"; exit 1; }
timeout 60 dune exec bench/main.exe -- --baseline "$tmpdir/portfolio.json" \
  --against "$tmpdir/portfolio.json" --fail-on-regress 0.1 > /dev/null \
  || { echo "ci: portfolio snapshot not baseline-compatible (FAIL)"; exit 1; }
echo "ci: portfolio bench ok"

# BMC inprocessing gate: run the BMC bench workload (inprocessing on
# vs off per design) against the committed snapshot.  The threshold is
# generous — CI machines vary — but a gross slowdown in the solver hot
# loops or the simplifier fails the pipeline.  The experiment itself
# also asserts on/off verdict consistency per design.
timeout 600 dune exec bench/main.exe -- bmc \
  --baseline BENCH_0001_bmc.json --fail-on-regress 100 --regress-floor 50 \
  --stats-json "$tmpdir/bmc.json" > "$tmpdir/bmc.out" \
  || { cat "$tmpdir/bmc.out"; echo "ci: bmc bench regressed (FAIL)"; exit 1; }
grep -q "consistent=true" "$tmpdir/bmc.out" \
  || { echo "ci: bmc on/off verdicts inconsistent (FAIL)"; exit 1; }
grep -q "bmc_bench.conflict_reduction_pct" "$tmpdir/bmc.json" \
  || { echo "ci: bmc reduction gauge missing (FAIL)"; exit 1; }
echo "ci: bmc inprocessing gate ok"

# Backend bench gate: the backend-matrix experiment (reference vs bdd
# vs race per workload) against the committed snapshot.  The
# experiment asserts cross-backend verdict consistency itself
# (consistent=true per arm); the baseline turns the racing overhead
# into a regression gate.
timeout 600 dune exec bench/main.exe -- backend \
  --baseline BENCH_0003_backend.json --fail-on-regress 100 --regress-floor 50 \
  --stats-json "$tmpdir/backend.json" > "$tmpdir/backend.out" \
  || { cat "$tmpdir/backend.out"; echo "ci: backend bench regressed (FAIL)"; exit 1; }
grep -q "consistent=false" "$tmpdir/backend.out" \
  && { cat "$tmpdir/backend.out"; echo "ci: backends disagreed (FAIL)"; exit 1; }
grep -q "backend_bench.small-cone.race_ms" "$tmpdir/backend.json" \
  || { echo "ci: backend bench gauges missing (FAIL)"; exit 1; }
echo "ci: backend bench gate ok"

# Corpus determinism: the corpus walk over examples/ must be
# byte-identical (stdout is timing-free by design) and report the
# same exit code for --jobs 1 and --jobs 2.  Any of the contract's
# exit codes (0 all-ok / 1 finding / 3 inconclusive-only) is fine —
# the stage tests determinism, not the verdicts.
rc1=0; rc2=0
timeout 300 dune exec bin/diam_tool.exe -- corpus examples/ --jobs 1 \
  > "$tmpdir/corpus1.out" || rc1=$?
timeout 300 dune exec bin/diam_tool.exe -- corpus examples/ --jobs 2 \
  > "$tmpdir/corpus2.out" || rc2=$?
case "$rc1" in
  0|1|3) ;;
  *) echo "ci: corpus walk exit $rc1 (FAIL)"; exit 1 ;;
esac
[ "$rc1" = "$rc2" ] \
  || { echo "ci: corpus exit codes differ across --jobs (FAIL)"; exit 1; }
diff -u "$tmpdir/corpus1.out" "$tmpdir/corpus2.out" \
  || { echo "ci: corpus reports differ across --jobs (FAIL)"; exit 1; }
echo "ci: corpus determinism ok"

# Corpus snapshot gate: the examples/ corpus stats must stay
# baseline-compatible with the committed snapshot and within a
# generous regression threshold.
rc=0
timeout 300 dune exec bin/diam_tool.exe -- corpus examples/ \
  --baseline BENCH_0002_corpus.json --fail-on-regress 100 \
  --stats-json "$tmpdir/corpus.json" > "$tmpdir/corpus.out" || rc=$?
case "$rc" in
  0|1|3) ;;
  *) cat "$tmpdir/corpus.out"; echo "ci: corpus gate exit $rc (FAIL)"; exit 1 ;;
esac
grep -q "REGRESSION" "$tmpdir/corpus.out" \
  && { cat "$tmpdir/corpus.out"; echo "ci: corpus regressed (FAIL)"; exit 1; }
grep -q '"corpus.files"' "$tmpdir/corpus.json" \
  || { echo "ci: corpus tallies missing from snapshot (FAIL)"; exit 1; }
echo "ci: corpus snapshot gate ok"

# Fuzz smoke: a fixed-seed campaign on a healthy build must report
# zero findings — each design runs through the differential oracle
# matrix (ladder / no-inprocessing / portfolio / expired budget), so
# a single finding here is a real engine bug, and the campaign exits 1.
timeout 600 dune exec bin/diam_tool.exe -- fuzz --count 20 --seed 1 \
  > "$tmpdir/fuzz.out" \
  || { cat "$tmpdir/fuzz.out"; echo "ci: fuzz campaign found bugs (FAIL)"; exit 1; }
grep -q "fuzz: 20 cases, 0 findings" "$tmpdir/fuzz.out" \
  || { cat "$tmpdir/fuzz.out"; echo "ci: fuzz summary malformed (FAIL)"; exit 1; }
echo "ci: fuzz smoke ok"

# Repro replay: minimal netlists shrunk from past chaos findings are
# committed under test/repros/; every one must still parse and verify
# without a crash (the walk itself is the assertion — a malformed or
# crashed tally is a finding and a different exit).
rc=0
timeout 300 dune exec bin/diam_tool.exe -- corpus test/repros/ \
  > "$tmpdir/repros.out" || rc=$?
case "$rc" in
  0|1) ;;
  *) cat "$tmpdir/repros.out"; echo "ci: repro replay exit $rc (FAIL)"; exit 1 ;;
esac
grep -qE "0 malformed, 0 crashed" "$tmpdir/repros.out" \
  || { cat "$tmpdir/repros.out"; echo "ci: repros degraded (FAIL)"; exit 1; }
echo "ci: repro replay ok"

# Chaos drill: with a seeded solver fault armed, the campaign must
# find it (findings > 0), shrink every finding to at most half the
# breeding design, and write repros that replay cleanly — one drill
# per fault class, inside the campaign test suite.
DIAMBOUND_CHAOS_SEED=1234 timeout 600 \
  dune exec test/test_main.exe -- test campaign

# Serve drill: a chaos-armed JSONL session over a mixed 100+-request
# corpus — valid verifies, duplicates, malformed lines, budget-starved
# and fault-injected requests.  The server must answer every request
# exactly once (structured errors, never a crash), exit 0, serve the
# drained duplicate as a cache hit, and produce byte-identical output
# for --jobs 1 and --jobs 2.  With chaos armed every cache hit is
# differentially replayed, so poisoned_purged = 0 doubles as the
# cache-coherence audit: no served entry disagreed with a fresh run.
serve_corpus() {
  # a deterministic duplicate pair for the cache-hit contract
  echo '{"id":"dup","op":"verify","netlist_file":"examples/ring5.bench","target":"two_hot"}'
  echo '{"op":"drain"}'
  echo '{"id":"dup","op":"verify","netlist_file":"examples/ring5.bench","target":"two_hot"}'
  echo '{"op":"drain"}'
  for round in 1 2 3 4 5 6 7 8; do
    echo "{\"id\":\"r$round:ring5:two_hot\",\"op\":\"verify\",\"netlist_file\":\"examples/ring5.bench\",\"target\":\"two_hot\"}"
    echo "{\"id\":\"r$round:ring5:at_last\",\"op\":\"verify\",\"netlist_file\":\"examples/ring5.bench\",\"target\":\"at_last\"}"
    echo "{\"id\":\"r$round:counter3\",\"op\":\"verify\",\"netlist_file\":\"examples/counter3.bench\"}"
    for f in test/repros/*.bench; do
      # every cone inside a round must be distinct, or the cache
      # hit/miss field races across concurrent workers and the
      # --jobs 1 vs 2 diff below turns flaky — skip the repro files
      # whose shrunk netlists duplicate another's cone
      case "$f" in
      *0000-deep-cex* | *0001-wide-memory-t0-disagreement*) continue ;;
      esac
      echo "{\"id\":\"r$round:$f\",\"op\":\"verify\",\"netlist_file\":\"$f\"}"
    done
    echo '{oops'
    echo '{"op":"dance"}'
    echo '{"id":"nonet","op":"verify"}'
    echo '{"id":"multi","op":"verify","netlist_file":"examples/ring5.bench"}'
    # a unique inline cone nothing else caches: "budget-exhausted"
    # responses are never cached, so every round misses afresh
    echo "{\"id\":\"starved$round\",\"op\":\"verify\",\"netlist\":\"a = DFF(na, 0)\\nb = DFF(a, 0)\\nna = NOT(b)\\nstarved = AND(a, b)\\nOUTPUT(starved)\",\"timeout_ms\":0}"
    echo "{\"id\":\"chaos$round\",\"op\":\"verify\",\"netlist_file\":\"examples/counter3.bench\",\"chaos\":\"flip-to-unsat\"}"
    echo "{\"id\":\"crash$round\",\"op\":\"verify\",\"netlist_file\":\"examples/ring5.bench\",\"target\":\"at_last\",\"chaos\":\"crash\"}"
    echo '{"op":"drain"}'
  done
}
serve_corpus > "$tmpdir/serve.jsonl"
req=$(wc -l < "$tmpdir/serve.jsonl")
[ "$req" -ge 100 ] || { echo "ci: serve corpus too small ($req)"; exit 1; }
for jobs in 1 2; do
  DIAMBOUND_CHAOS_SEED=1234 timeout 600 dune exec bin/diam_tool.exe -- serve \
    --jobs "$jobs" --stats-json "$tmpdir/serve$jobs.json" \
    < "$tmpdir/serve.jsonl" > "$tmpdir/serve$jobs.out" \
    || { echo "ci: serve drill (--jobs $jobs) crashed (FAIL)"; exit 1; }
  resp=$(wc -l < "$tmpdir/serve$jobs.out")
  [ "$req" = "$resp" ] \
    || { echo "ci: serve answered $resp of $req requests (FAIL)"; exit 1; }
done
diff -u "$tmpdir/serve1.out" "$tmpdir/serve2.out" \
  || { echo "ci: serve responses differ across --jobs (FAIL)"; exit 1; }
grep '"id":"crash1"' "$tmpdir/serve1.out" | grep -q '"error":"internal"' \
  || { echo "ci: injected crash not a structured error (FAIL)"; exit 1; }
grep '"id":"starved1"' "$tmpdir/serve1.out" | grep -q 'budget-exhausted' \
  || { echo "ci: starved request did not degrade (FAIL)"; exit 1; }
grep '"id":"dup"' "$tmpdir/serve1.out" | sed -n 1p \
  | grep -q '"cache":"miss"' \
  || { echo "ci: first dup not a miss (FAIL)"; exit 1; }
grep '"id":"dup"' "$tmpdir/serve1.out" | sed -n 2p \
  | grep -q '"cache":"hit"' \
  || { echo "ci: drained duplicate not a cache hit (FAIL)"; exit 1; }
[ "$(grep '"id":"dup"' "$tmpdir/serve1.out" | sed 's/"cache":"[a-z]*"//' \
     | sort -u | wc -l)" = 1 ] \
  || { echo "ci: dup responses differ beyond the cache field (FAIL)"; exit 1; }
grep -q '"serve.cache.poisoned_purged": *0' "$tmpdir/serve1.json" \
  || { echo "ci: differential replay purged entries (FAIL)"; exit 1; }
grep -q '"serve.cache.hits": *[1-9]' "$tmpdir/serve1.json" \
  || { echo "ci: serve cache never hit (FAIL)"; exit 1; }
echo "ci: serve drill ok"

# Serve saturation: one worker, a one-slot queue, chaos armed.  A
# poisoned worker must be respawned (restarts >= 1), a stalled worker
# must force load-shedding (shed >= 1, overloaded response), and the
# whole drill must be byte-deterministic across runs.
sat_corpus() {
  echo '{"id":"po","op":"poison"}'
  echo '{"op":"drain"}'
  echo '{"id":"st","op":"stall"}'
  echo '{"id":"a","op":"verify","netlist_file":"examples/ring5.bench","target":"two_hot"}'
  echo '{"id":"b","op":"verify","netlist_file":"examples/counter3.bench"}'
  echo '{"op":"drain"}'
  echo '{"id":"after","op":"verify","netlist_file":"examples/counter3.bench"}'
}
sat_corpus > "$tmpdir/sat.jsonl"
for run in 1 2; do
  DIAMBOUND_CHAOS_SEED=1234 timeout 300 dune exec bin/diam_tool.exe -- serve \
    --jobs 1 --queue-limit 1 --stats-json "$tmpdir/sat$run.json" \
    < "$tmpdir/sat.jsonl" > "$tmpdir/sat$run.out" \
    || { echo "ci: serve saturation run $run crashed (FAIL)"; exit 1; }
done
diff -u "$tmpdir/sat1.out" "$tmpdir/sat2.out" \
  || { echo "ci: saturation drill not deterministic (FAIL)"; exit 1; }
grep '"id":"b"' "$tmpdir/sat1.out" | grep -q '"error":"overloaded"' \
  || { echo "ci: saturated queue did not shed (FAIL)"; exit 1; }
grep '"id":"after"' "$tmpdir/sat1.out" | grep -q '"verdict"' \
  || { echo "ci: server dead after poison+stall (FAIL)"; exit 1; }
grep -q '"serve.worker.restarts": *[1-9]' "$tmpdir/sat1.json" \
  || { echo "ci: poisoned worker never restarted (FAIL)"; exit 1; }
grep -q '"serve.shed": *[1-9]' "$tmpdir/sat1.json" \
  || { echo "ci: shed counter missing (FAIL)"; exit 1; }
echo "ci: serve saturation ok"

# Telemetry smoke: arm the watchdog and park a worker with the chaos
# stall op while wall time elapses (the sleep happens between request
# lines, so the parked worker's heartbeat goes idle past the window).
# The monitor must dump a flight recording (watchdog.dumps >= 1) that
# trace-report can read back grouped by correlation id, the warn line
# must carry the parked request's corr, and — with logging at its
# noisiest — stdout must stay byte-identical across --jobs values
# (queue-limit 64 so no shed outcome can differ either).
tel_corpus() {
  echo '{"id":"st","op":"stall"}'
  sleep 1
  echo '{"op":"drain"}'
  echo '{"id":"v1","op":"verify","netlist_file":"examples/counter3.bench"}'
  echo '{"id":"v2","op":"verify","netlist_file":"examples/ring5.bench","target":"two_hot"}'
}
for jobs in 1 2; do
  tel_corpus | timeout 300 dune exec bin/diam_tool.exe -- serve \
    --jobs "$jobs" --queue-limit 64 --stall-window 0.3 \
    --flight-recorder "$tmpdir/flight$jobs.jsonl" \
    --log-level debug --log "$tmpdir/telemetry$jobs.log" \
    --stats-json "$tmpdir/telemetry$jobs.json" \
    > "$tmpdir/telemetry$jobs.out" \
    || { echo "ci: telemetry drill (--jobs $jobs) crashed (FAIL)"; exit 1; }
done
diff -u "$tmpdir/telemetry1.out" "$tmpdir/telemetry2.out" \
  || { echo "ci: responses differ across --jobs with logging on (FAIL)"; exit 1; }
grep -q '"watchdog.dumps": *[1-9]' "$tmpdir/telemetry1.json" \
  || { echo "ci: watchdog never dumped a flight (FAIL)"; exit 1; }
grep '"event":"watchdog.stall"' "$tmpdir/telemetry1.log" \
  | grep -q '"corr":"req-0"' \
  || { echo "ci: stall warn missing its correlation id (FAIL)"; exit 1; }
timeout 60 dune exec bin/diam_tool.exe -- trace-report \
  "$tmpdir/flight1.jsonl" > "$tmpdir/flight.report" \
  || { echo "ci: flight recording unreadable (FAIL)"; exit 1; }
grep -q "req-0" "$tmpdir/flight.report" \
  || { echo "ci: flight report lost the stalled request (FAIL)"; exit 1; }
# the metrics op, separately: its exposition text is time-dependent,
# so it stays out of the byte-diff corpus above
echo '{"id":"m","op":"metrics"}' | timeout 60 dune exec bin/diam_tool.exe -- \
  serve > "$tmpdir/metrics.out" \
  || { echo "ci: metrics op crashed (FAIL)"; exit 1; }
grep -q '# TYPE diambound_' "$tmpdir/metrics.out" \
  || { echo "ci: metrics op exposition malformed (FAIL)"; exit 1; }
echo "ci: telemetry smoke ok"

# Self-baseline: a snapshot diffed against itself is compatible by
# construction and must show zero regressions at any threshold.
timeout 300 dune exec bench/main.exe -- baseline \
  --stats-json "$tmpdir/bench.json" > /dev/null
timeout 60 dune exec bench/main.exe -- --baseline "$tmpdir/bench.json" \
  --against "$tmpdir/bench.json" --fail-on-regress 0.1 > /dev/null \
  || { echo "ci: self-baseline regressed (FAIL)"; exit 1; }
echo "ci: self-baseline ok"

echo "ci: all green"
