#!/usr/bin/env bash
# CI entry point: build, test, and a budgeted end-to-end smoke run.
# Every stage is wrapped in timeout(1) so a hang fails the pipeline
# instead of stalling it.
set -euo pipefail
cd "$(dirname "$0")/.."

timeout 300 dune build
timeout 900 dune runtest

# Smoke-test the resource governance end to end: a 1-second deadline
# on a real design must come back promptly with a definite verdict
# (0/1) or an explicit inconclusive (3) — anything else is a bug.
rc=0
timeout 60 dune exec bin/verify_tool.exe -- examples/ring5.bench --timeout 1 \
  || rc=$?
case "$rc" in
  0|1|3) echo "ci: verify smoke exit $rc (ok)" ;;
  *) echo "ci: verify smoke exit $rc (FAIL)"; exit 1 ;;
esac

echo "ci: all green"
